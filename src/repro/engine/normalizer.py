"""The Data Normalizer: raw frame files -> config trees / schema tables.

Two cache levels keep fleet-scale parsing cheap:

* an **L1 per-run memo** keyed by ``(frame.cache_token, path, parser)``
  short-circuits repeated reads within one validation run (every sshd
  rule parses sshd_config once, not forty times);
* a shared **content-addressed** :class:`~repro.engine.parse_cache.ParseCache`
  keyed by ``(sha256(content), kind, parser)`` dedupes across frames and
  across scan cycles, so the N containers spawned from one image parse
  each identical config file exactly once per process.

Frame-scoped caches key on :attr:`ConfigFrame.cache_token` -- a monotonic
id that, unlike ``id(frame)``, is never reused after a frame is
garbage-collected mid-process.  All caches tolerate concurrent access
from validator worker threads: dict operations are GIL-atomic and a
racing duplicate parse is harmless (last store wins, artifacts are
immutable to the evaluators).
"""

from __future__ import annotations

import fnmatch
import posixpath
import time

from repro.chaos.fabric import _CHAOS, ChaosSchemaError, absorbed as _chaos_absorbed
from repro.errors import FileNotFoundInFrame, LensError, SchemaError
from repro.augtree.lenses import LensRegistry, default_registry
from repro.augtree.tree import ConfigTree
from repro.crawler.frame import ConfigFrame
from repro.engine.parse_cache import ParseCache, content_digest_and_size
from repro.engine.stages import StageTimings
from repro.schema import (
    SchemaParserRegistry,
    SchemaTable,
    default_schema_registry,
)
from repro.telemetry import DISABLED, Telemetry


def _select_files(files: list[str], file_context: list[str]) -> list[str]:
    """Files matching a rule's ``file_context`` patterns.

    Each item is a glob when it contains wildcard characters, otherwise a
    substring of the path (the paper's Listing 2 uses ``"sites-enabled"``
    to mean "any file under sites-enabled/").
    """
    selected: list[str] = []
    for path in files:
        basename = posixpath.basename(path)
        for pattern in file_context:
            pattern = pattern.strip()
            if any(char in pattern for char in "*?["):
                target = path if "/" in pattern else basename
                if fnmatch.fnmatch(target, pattern):
                    selected.append(path)
                    break
            elif pattern in path:
                selected.append(path)
                break
    return selected


class FileTargetIndex:
    """One frame's file listing plus memoized per-``file_context`` selections.

    Built once per ``(frame, search paths)`` pair; every rule sharing a
    ``file_context`` (in the planner's fused units, every rule of a unit)
    resolves its candidate files with one dict probe instead of
    re-filtering the listing.  Both ``files`` and the selection lists are
    cached objects -- callers must treat them as read-only.
    """

    __slots__ = ("files", "_selections")

    def __init__(self, files: list[str]):
        self.files = files
        self._selections: dict[tuple[str, ...], list[str]] = {}

    def select(self, file_context: list[str]) -> list[str]:
        if not file_context:
            return self.files
        key = tuple(file_context)
        cached = self._selections.get(key)
        if cached is None:
            cached = _select_files(self.files, file_context)
            self._selections[key] = cached
        return cached


class Normalizer:
    """File discovery + parsing with per-run and cross-run caching."""

    def __init__(
        self,
        lenses: LensRegistry | None = None,
        schemas: SchemaParserRegistry | None = None,
        *,
        cache: ParseCache | None = None,
        timings: StageTimings | None = None,
        telemetry: Telemetry | None = None,
        recorder=None,
    ):
        self.lenses = lenses or default_registry()
        self.schemas = schemas or default_schema_registry()
        #: Shared content-addressed cache (private to this run when the
        #: caller did not supply one).
        self.cache = cache if cache is not None else ParseCache()
        self.timings = timings
        self.telemetry = telemetry or DISABLED
        #: Incremental-mode dependency recorder (None outside incremental
        #: runs).  Hooks sit at method *entry*, before the memo checks:
        #: a memo hit still reads the frame conceptually, and a rule
        #: whose read was only recorded on the cold call would replay
        #: with an incomplete dependency slice.
        self.recorder = recorder
        self._tree_memo: dict[tuple[int, str, str], ConfigTree] = {}
        self._table_memo: dict[tuple[int, str, str], SchemaTable] = {}
        self._file_index: dict[tuple[int, tuple[str, ...]], FileTargetIndex] = {}
        self._digests: dict[tuple[int, str], tuple[str, int]] = {}

    # ---- discovery --------------------------------------------------------

    def file_index(
        self, frame: ConfigFrame, search_paths: list[str]
    ) -> FileTargetIndex:
        """The frame's file-target index for ``search_paths`` (cached).

        Built once per frame per search-path set; its listing and every
        per-``file_context`` selection are shared cached lists.
        """
        if self.recorder is not None:
            self.recorder.record_listing(frame, search_paths)
        key = (frame.cache_token, tuple(search_paths))
        index = self._file_index.get(key)
        if index is None:
            started = time.perf_counter()
            files: list[str] = []
            for top in search_paths:
                files.extend(frame.files.files_under(top))
            index = FileTargetIndex(files)
            self._file_index[key] = index
            if self.timings is not None:
                self.timings.add("discover", time.perf_counter() - started)
        return index

    def files_in_search_paths(
        self, frame: ConfigFrame, search_paths: list[str]
    ) -> list[str]:
        """Every file under the manifest's search paths (cached).

        Returns the cached list itself -- callers must treat it as
        read-only (copying it per call was measurable at fleet scale).
        """
        return self.file_index(frame, search_paths).files

    def candidate_files(
        self,
        frame: ConfigFrame,
        search_paths: list[str],
        file_context: list[str],
    ) -> list[str]:
        """Files a rule applies to (see :func:`_select_files`).

        Without a file_context every file under the search paths is a
        candidate.  Selections are memoized on the frame's
        :class:`FileTargetIndex`, so forty sshd rules share one filter
        pass; the returned list is the cached object itself -- callers
        must treat it as read-only.
        """
        return self.file_index(frame, search_paths).select(file_context)

    # ---- parsing -----------------------------------------------------------

    def _digest_for(
        self, frame: ConfigFrame, path: str, content: str
    ) -> tuple[str, int]:
        """``(content digest, encoded byte length)`` for a frame file.

        The byte count comes from the same UTF-8/surrogateescape encode
        as the digest, so cache byte accounting counts true bytes (not
        characters) for non-ASCII configs.
        """
        key = (frame.cache_token, path)
        entry = self._digests.get(key)
        if entry is None:
            entry = content_digest_and_size(content)
            self._digests[key] = entry
        return entry

    def _timed_parse(self, parse, content: str, path: str, parser_name: str):
        """Run a real parse (cache miss), charging the ``parse`` stage and
        the per-lens profile; parse failures count as lens errors."""
        telemetry = self.telemetry
        if self.timings is None and not telemetry.enabled:
            return parse(content, source=path)
        started = time.perf_counter()
        failed = False
        try:
            return parse(content, source=path)
        except Exception:
            failed = True
            raise
        finally:
            duration = time.perf_counter() - started
            if self.timings is not None:
                self.timings.add("parse", duration)
            if telemetry.enabled:
                telemetry.profiler.record(
                    "lens", parser_name, duration, error=failed
                )
                telemetry.metrics.counter(
                    "repro_parses_total",
                    "Real parses executed (cache misses), by parser.",
                    labels=("parser",),
                ).inc(parser=parser_name)
                telemetry.spans.record(
                    parser_name, category="parse",
                    start_s=started, duration_s=duration, file=path,
                )

    def tree_for(
        self, frame: ConfigFrame, path: str, lens_name: str | None = None
    ) -> ConfigTree:
        """Parse ``path`` with the named lens (or by filename pattern,
        falling back to the generic key-value lens)."""
        if self.recorder is not None:
            self.recorder.record_file(frame, path)
        if lens_name:
            lens = self.lenses.get(lens_name)
        else:
            lens = self.lenses.for_file(path) or self.lenses.get("keyvalue")
        if _CHAOS.armed:
            # Fire before the memo/cache lookups so the decision depends
            # only on the plan and the key, never on cache warmth.
            _CHAOS.fire("lens.parse", path)
        memo_key = (frame.cache_token, path, lens.name)
        cached = self._tree_memo.get(memo_key)
        if cached is not None:
            return cached
        content = frame.read_config(path)
        digest, nbytes = self._digest_for(frame, path, content)
        tree = self.cache.get_or_parse(
            (digest, "tree", lens.name),
            nbytes,
            lambda: self._timed_parse(lens.parse, content, path, lens.name),
        )
        self._tree_memo[memo_key] = tree
        return tree

    def table_for(
        self, frame: ConfigFrame, path: str, parser_name: str | None = None
    ) -> SchemaTable:
        """Parse ``path`` with the named schema parser (or by pattern)."""
        if self.recorder is not None:
            self.recorder.record_file(frame, path)
        if parser_name:
            parser = self.schemas.get(parser_name)
        else:
            parser = self.schemas.for_file(path)
            if parser is None:
                raise SchemaError(
                    f"no schema parser matches {path!r}; set schema_parser "
                    f"in the rule or manifest"
                )
        if _CHAOS.armed:
            _CHAOS.fire("lens.parse", path, error=ChaosSchemaError)
        memo_key = (frame.cache_token, path, parser.name)
        cached = self._table_memo.get(memo_key)
        if cached is not None:
            return cached
        content = frame.read_config(path)
        digest, nbytes = self._digest_for(frame, path, content)
        table = self.cache.get_or_parse(
            (digest, "table", parser.name),
            nbytes,
            lambda: self._timed_parse(parser.parse, content, path,
                                      parser.name),
        )
        self._table_memo[memo_key] = table
        return table

    def try_tree(
        self, frame: ConfigFrame, path: str, lens_name: str | None = None
    ) -> ConfigTree | None:
        """``tree_for`` that returns None on parse failure (used by
        composite lookups that probe many files).

        An unreadable file is treated like an unparseable one: the probe
        moves on to the next candidate instead of killing the cycle."""
        try:
            return self.tree_for(frame, path, lens_name)
        except (LensError, FileNotFoundInFrame) as error:
            _chaos_absorbed(error)
            return None
