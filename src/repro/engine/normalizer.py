"""The Data Normalizer: raw frame files -> config trees / schema tables.

One normalizer instance serves one validation run; parsed artifacts are
cached per (frame, file, parser) because many rules read the same file
(every sshd rule parses sshd_config once, not forty times).
"""

from __future__ import annotations

import fnmatch
import posixpath

from repro.errors import LensError, SchemaError
from repro.augtree.lenses import LensRegistry, default_registry
from repro.augtree.tree import ConfigTree
from repro.crawler.frame import ConfigFrame
from repro.schema import (
    SchemaParserRegistry,
    SchemaTable,
    default_schema_registry,
)


class Normalizer:
    """File discovery + parsing with per-run caching."""

    def __init__(
        self,
        lenses: LensRegistry | None = None,
        schemas: SchemaParserRegistry | None = None,
    ):
        self.lenses = lenses or default_registry()
        self.schemas = schemas or default_schema_registry()
        self._tree_cache: dict[tuple[int, str, str], ConfigTree] = {}
        self._table_cache: dict[tuple[int, str, str], SchemaTable] = {}
        self._files_cache: dict[tuple[int, tuple[str, ...]], list[str]] = {}

    # ---- discovery --------------------------------------------------------

    def files_in_search_paths(
        self, frame: ConfigFrame, search_paths: list[str]
    ) -> list[str]:
        """Every file under the manifest's search paths (cached)."""
        key = (id(frame), tuple(search_paths))
        cached = self._files_cache.get(key)
        if cached is None:
            cached = []
            for top in search_paths:
                cached.extend(frame.files.files_under(top))
            self._files_cache[key] = cached
        return list(cached)

    def candidate_files(
        self,
        frame: ConfigFrame,
        search_paths: list[str],
        file_context: list[str],
    ) -> list[str]:
        """Files a rule applies to.

        Each ``file_context`` item is a glob when it contains wildcard
        characters, otherwise a substring of the path (the paper's Listing
        2 uses ``"sites -enabled"`` to mean "any file under
        sites-enabled/").  Without a file_context every file under the
        search paths is a candidate.
        """
        files = self.files_in_search_paths(frame, search_paths)
        if not file_context:
            return files
        selected: list[str] = []
        for path in files:
            basename = posixpath.basename(path)
            for pattern in file_context:
                pattern = pattern.strip()
                if any(char in pattern for char in "*?["):
                    target = path if "/" in pattern else basename
                    if fnmatch.fnmatch(target, pattern):
                        selected.append(path)
                        break
                elif pattern in path:
                    selected.append(path)
                    break
        return selected

    # ---- parsing -----------------------------------------------------------

    def tree_for(
        self, frame: ConfigFrame, path: str, lens_name: str | None = None
    ) -> ConfigTree:
        """Parse ``path`` with the named lens (or by filename pattern,
        falling back to the generic key-value lens)."""
        key = (id(frame), path, lens_name or "")
        cached = self._tree_cache.get(key)
        if cached is not None:
            return cached
        if lens_name:
            lens = self.lenses.get(lens_name)
        else:
            lens = self.lenses.for_file(path) or self.lenses.get("keyvalue")
        tree = lens.parse(frame.read_config(path), source=path)
        self._tree_cache[key] = tree
        return tree

    def table_for(
        self, frame: ConfigFrame, path: str, parser_name: str | None = None
    ) -> SchemaTable:
        """Parse ``path`` with the named schema parser (or by pattern)."""
        key = (id(frame), path, parser_name or "")
        cached = self._table_cache.get(key)
        if cached is not None:
            return cached
        if parser_name:
            parser = self.schemas.get(parser_name)
        else:
            parser = self.schemas.for_file(path)
            if parser is None:
                raise SchemaError(
                    f"no schema parser matches {path!r}; set schema_parser "
                    f"in the rule or manifest"
                )
        table = parser.parse(frame.read_config(path), source=path)
        self._table_cache[key] = table
        return table

    def try_tree(
        self, frame: ConfigFrame, path: str, lens_name: str | None = None
    ) -> ConfigTree | None:
        """``tree_for`` that returns None on parse failure (used by
        composite lookups that probe many files)."""
        try:
            return self.tree_for(frame, path, lens_name)
        except LensError:
            return None
