"""The rule engine and output processing (paper Fig. 1, right half)."""

from repro.engine.artifact_store import (
    ArtifactStore,
    ArtifactStoreStats,
    store_path_for,
)
from repro.engine.engine import ConfigValidator
from repro.engine.incremental import (
    DependencyRecorder,
    IncrementalRunStats,
    StoreStats,
    VerdictStore,
    ruleset_digest,
)
from repro.engine.normalizer import Normalizer
from repro.engine.parse_cache import CacheStats, ParseCache
from repro.engine.stages import StageTimings
from repro.engine.results import (
    Evidence,
    Outcome,
    RuleResult,
    ValidationReport,
    Verdict,
)
from repro.engine.drift import DriftEntry, DriftReport, diff_reports, render_drift
from repro.engine.report import (
    render_json,
    render_result,
    render_text,
    result_to_dict,
    summarize_by_entity,
)

__all__ = [
    "ArtifactStore",
    "ArtifactStoreStats",
    "store_path_for",
    "CacheStats",
    "ConfigValidator",
    "ParseCache",
    "StageTimings",
    "DriftEntry",
    "DriftReport",
    "diff_reports",
    "render_drift",
    "DependencyRecorder",
    "Evidence",
    "IncrementalRunStats",
    "Normalizer",
    "Outcome",
    "StoreStats",
    "VerdictStore",
    "ruleset_digest",
    "RuleResult",
    "ValidationReport",
    "Verdict",
    "render_json",
    "render_result",
    "render_text",
    "result_to_dict",
    "summarize_by_entity",
]
