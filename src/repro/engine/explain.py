"""Compiler-style verdict explanations (``repro explain``).

Turns a provenance-carrying :class:`~repro.engine.results.RuleResult`
into the diagnostic an operator actually wants: the offending source
excerpt with a caret underline, the predicate that decided the verdict
with observed vs expected values, the evaluation route, and the rule's
authored description and suggested action (anchored to the rule file's
line, see :attr:`~repro.cvl.model.Rule.source_line`).

The cross-cycle half (``repro explain --since``) works off the history
store's provenance table: :func:`failing_streak_start` locates the cycle
a rule started failing, and :func:`render_transition` diffs the anchored
source lines between the last passing and first failing records.
"""

from __future__ import annotations

from repro.engine.provenance import ProvenanceRecord
from repro.engine.results import RuleResult, Verdict

#: Anchors rendered per explanation; beyond this they are summarized.
_MAX_ANCHORS = 5

#: Verdicts that count as "failing" for streak detection.
_FAILING = frozenset(
    (Verdict.NONCOMPLIANT.value, Verdict.ERROR.value)
)


# ---- single-verdict rendering ----------------------------------------------


def _caret_line(line_text: str, span) -> str:
    """The ``^^^`` underline for the span's portion of its first line."""
    start = max(1, span.column)
    if span.end_line == span.line:
        end = max(start + 1, span.end_column)
    else:
        end = len(line_text.rstrip()) + 1
    end = min(end, len(line_text) + 1)
    width = max(1, end - start)
    # Tabs before the caret keep their width so the underline stays aligned.
    pad = "".join(
        "\t" if char == "\t" else " " for char in line_text[: start - 1]
    )
    return pad + "^" * width


def _source_block(anchor, text: str, context: int) -> list[str]:
    """Numbered context lines + caret underline for one anchor."""
    span = anchor.span
    lines = text.splitlines()
    if span is None or not 1 <= span.line <= len(lines):
        return []
    low = max(1, span.line - max(0, context))
    width = len(str(span.line))
    block = []
    for number in range(low, span.line + 1):
        block.append(f"   {number:>{width}} | {lines[number - 1]}")
    block.append(f"   {'':>{width}} | " + _caret_line(lines[span.line - 1], span))
    if span.end_line > span.line:
        more = span.end_line - span.line
        block.append(f"   {'':>{width}} | ... spans {more} more line(s)")
    return block


def render_explanation(
    result: RuleResult,
    *,
    read_text=None,
    context: int = 2,
) -> str:
    """One verdict as a compiler-style diagnostic.

    ``read_text(target, path)`` returns the raw file text for source
    excerpts (None disables them; the anchor's stored one-line excerpt
    is used instead).
    """
    rule = result.rule
    record = result.provenance
    lines = [
        f"[{result.verdict.value.upper()}] {result.entity}/{rule.name}"
        f" -- {result.message}"
    ]
    where = rule.source
    if rule.source_line:
        where = f"{rule.source}:{rule.source_line}"
    description = rule.description or "(no description)"
    lines.append(f"  rule: {description}  [{where}]")
    if record is None:
        lines.append("  (no provenance recorded: run with --provenance)")
        return "\n".join(lines)

    spanless = []
    rendered_anchors = 0
    for anchor in record.anchors:
        if rendered_anchors >= _MAX_ANCHORS:
            remaining = len(record.anchors) - rendered_anchors
            lines.append(f"  ... {remaining} more anchor(s)")
            break
        if anchor.span is None or not anchor.file:
            spanless.append(anchor)
            continue
        rendered_anchors += 1
        lines.append(f"  --> {anchor.location()}")
        text = read_text(result.target, anchor.file) if read_text else None
        block = _source_block(anchor, text, context) if text else []
        if block:
            lines.extend(block)
        elif anchor.excerpt:
            lines.append(f"      {anchor.excerpt}")
    for anchor in spanless[:_MAX_ANCHORS]:
        location = anchor.path or anchor.file or "(runtime)"
        value = f" = {anchor.value!r}" if anchor.value != "" else ""
        lines.append(f"  --> {location}{value}  (no source span)")

    if record.observed:
        lines.append(
            "  found: " + ", ".join(repr(v) for v in record.observed)
        )
    lines.append(f"  why: {record.predicate}")
    for key, value in record.expected.items():
        lines.append(f"  expected {key}: {value}")
    route = record.route
    if record.origin and record.origin != record.route:
        route = f"{record.route} (computed as {record.origin})"
    lines.append(f"  route: {route}")
    for ref in record.referents:
        verdict = ref.get("verdict")
        state = {True: "pass", False: "fail"}.get(verdict, "unknown")
        lines.append(
            f"  referent: {ref.get('entity', '?')}/{ref.get('rule', '?')}"
            f" = {state}"
        )
    if result.verdict is not Verdict.COMPLIANT and rule.suggested_action:
        lines.append(f"  action: {rule.suggested_action}")
    return "\n".join(lines)


def explanation_to_dict(result: RuleResult) -> dict:
    """Machine-readable form of one explanation (``explain --json``)."""
    rule = result.rule
    payload = {
        "entity": result.entity,
        "rule": rule.name,
        "target": result.target,
        "verdict": result.verdict.value,
        "outcome": result.outcome.value,
        "message": result.message,
        "severity": rule.severity,
        "description": rule.description,
        "suggested_action": rule.suggested_action,
        "rule_source": rule.source,
        "rule_source_line": rule.source_line,
    }
    if result.provenance is not None:
        payload["provenance"] = result.provenance.to_dict()
    return payload


# ---- cross-cycle linking (--since) ------------------------------------------


def failing_streak_start(
    history: list[tuple[int, str]],
) -> tuple[int, int | None] | None:
    """Start of the *current* failing streak in a rule's verdict series.

    ``history`` is ``rule_history()`` output: ``(cycle_id, verdict)``
    oldest first.  Returns ``(first_failing_cycle, last_passing_cycle)``
    -- ``last_passing_cycle`` is None when the rule has failed since its
    first recorded cycle -- or None when the rule is not currently
    failing.
    """
    if not history or history[-1][1] not in _FAILING:
        return None
    first_fail = history[-1][0]
    last_pass = None
    for cycle_id, verdict in reversed(history):
        if verdict in _FAILING:
            first_fail = cycle_id
        else:
            last_pass = cycle_id
            break
    return first_fail, last_pass


def _anchor_lines(payload: dict | None) -> dict[str, str]:
    """{file:line:col: excerpt} from a stored provenance payload."""
    record = ProvenanceRecord.from_dict(payload)
    if record is None:
        return {}
    return {
        anchor.location(): anchor.excerpt
        for anchor in record.anchors
        if anchor.file and anchor.span is not None
    }


def render_transition(
    target: str,
    entity: str,
    rule: str,
    *,
    first_fail: int,
    last_pass: int | None,
    failing: dict | None,
    passing: dict | None,
) -> str:
    """The pass->fail transition of one rule, with anchored line diffs.

    ``failing`` / ``passing`` are the stored provenance payloads of the
    first failing and last passing cycles (either may be None when those
    cycles ran without ``--provenance``).
    """
    lines = [f"# {entity}/{rule} on {target}"]
    if last_pass is None:
        lines.append(f"  failing since its first recorded cycle "
                     f"({first_fail})")
    else:
        lines.append(f"  first failing cycle: {first_fail} "
                     f"(last passed: {last_pass})")
    fail_record = ProvenanceRecord.from_dict(failing)
    if fail_record is not None and fail_record.predicate:
        lines.append(f"  why: {fail_record.predicate}")
    before = _anchor_lines(passing)
    after = _anchor_lines(failing)
    if not before and not after:
        lines.append("  (no anchored provenance stored for these cycles)")
        return "\n".join(lines)
    shown = False
    for location in sorted(set(before) | set(after)):
        old = before.get(location)
        new = after.get(location)
        if old == new:
            continue
        shown = True
        lines.append(f"  {location}:")
        if old is not None:
            lines.append(f"    - {old}")
        if new is not None:
            lines.append(f"    + {new}")
    if not shown:
        # Same anchored lines on both sides: the flip came from
        # elsewhere (runtime state, a referenced verdict, ...).
        for location in sorted(after):
            lines.append(f"  {location}: {after[location]}")
        lines.append("  anchored lines unchanged between the two cycles")
    return "\n".join(lines)
