"""Verdict provenance: why a rule decided what it decided, anchored to source.

A :class:`ProvenanceRecord` rides on :attr:`RuleResult.provenance` when a
run asks for it.  It captures:

- the **anchors**: the matched nodes' file / tree path / value, with the
  :class:`~repro.augtree.tree.SourceSpan` the lens recorded at parse time
  and the raw source line it points at;
- the **predicate** that decided the verdict, with observed vs expected
  values;
- the evaluation **route**: ``direct`` (per-rule evaluator), ``fused``
  (compiled plan unit), ``composite`` (expression over other verdicts,
  with its referents), or ``replayed`` (incremental store hit; ``origin``
  keeps the route the verdict was originally computed by).

Records are built *after* evaluation from the finished result, so the
evaluators stay provenance-free and provenance-off runs take no new code
path at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.augtree.tree import SourceSpan
from repro.engine.results import Outcome, RuleResult

ROUTE_DIRECT = "direct"
ROUTE_FUSED = "fused"
ROUTE_COMPOSITE = "composite"
ROUTE_REPLAYED = "replayed"

#: Longest excerpt kept per anchor; lines beyond this are truncated.
_EXCERPT_CAP = 400


@dataclass
class SourceAnchor:
    """One matched node, tied back to the raw file text."""

    file: str = ""
    path: str = ""       # tree path / table name / runtime key
    value: str = ""
    span: SourceSpan | None = None
    excerpt: str = ""    # the span's first source line, verbatim

    def to_dict(self) -> dict:
        payload: dict = {"file": self.file, "path": self.path,
                         "value": self.value}
        if self.span is not None:
            payload["span"] = self.span.to_list()
        if self.excerpt:
            payload["excerpt"] = self.excerpt
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SourceAnchor":
        return cls(
            file=str(payload.get("file", "")),
            path=str(payload.get("path", "")),
            value=str(payload.get("value", "")),
            span=SourceSpan.from_list(payload.get("span")),
            excerpt=str(payload.get("excerpt", "")),
        )

    def location(self) -> str:
        """``file:line:column`` (as much of it as is known)."""
        if not self.file:
            return self.path
        if self.span is None:
            return self.file
        return f"{self.file}:{self.span.line}:{self.span.column}"


@dataclass
class ProvenanceRecord:
    """Structured why-and-where for one RuleResult."""

    route: str
    origin: str
    predicate: str
    observed: list[str] = field(default_factory=list)
    expected: dict = field(default_factory=dict)
    anchors: list[SourceAnchor] = field(default_factory=list)
    #: Composite rules: the per-entity verdicts the expression referenced,
    #: as ``{"entity", "rule", "verdict"}`` dicts (verdict may be None when
    #: the referenced pair never produced a result).
    referents: list[dict] = field(default_factory=list)

    def as_route(self, route: str) -> "ProvenanceRecord":
        """A copy re-labelled with ``route`` (``origin`` is preserved)."""
        return replace(self, route=route)

    def first_spanned_anchor(self) -> SourceAnchor | None:
        for anchor in self.anchors:
            if anchor.file and anchor.span is not None:
                return anchor
        return None

    def to_dict(self) -> dict:
        payload: dict = {
            "route": self.route,
            "origin": self.origin,
            "predicate": self.predicate,
            "observed": list(self.observed),
            "expected": dict(self.expected),
        }
        if self.anchors:
            payload["anchors"] = [anchor.to_dict() for anchor in self.anchors]
        if self.referents:
            payload["referents"] = [dict(ref) for ref in self.referents]
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> "ProvenanceRecord | None":
        if not isinstance(payload, dict):
            return None
        try:
            return cls(
                route=str(payload.get("route", ROUTE_DIRECT)),
                origin=str(payload.get("origin",
                                       payload.get("route", ROUTE_DIRECT))),
                predicate=str(payload.get("predicate", "")),
                observed=[str(v) for v in payload.get("observed", [])],
                expected=dict(payload.get("expected", {})),
                anchors=[SourceAnchor.from_dict(a)
                         for a in payload.get("anchors", [])
                         if isinstance(a, dict)],
                referents=[dict(r) for r in payload.get("referents", [])
                           if isinstance(r, dict)],
            )
        except (TypeError, ValueError):
            return None


class ExcerptReader:
    """Per-run memoized access to frame file lines.

    Anchors only ever reference files the rule itself read, so pulling the
    text again is a parse-cache-warm re-read; the memo makes it once per
    (frame, file) per scan cycle.
    """

    def __init__(self):
        self._memo: dict[tuple, list[str] | None] = {}

    def _lines(self, frame, path: str) -> list[str] | None:
        key = (getattr(frame, "cache_token", None) or id(frame), path)
        if key not in self._memo:
            try:
                self._memo[key] = frame.read_config(path).splitlines()
            except Exception:
                self._memo[key] = None
        return self._memo[key]

    def excerpt(self, frame, path: str, span: SourceSpan | None) -> str:
        if frame is None or not path or span is None:
            return ""
        lines = self._lines(frame, path)
        if not lines or not 1 <= span.line <= len(lines):
            return ""
        return lines[span.line - 1].rstrip()[:_EXCERPT_CAP]


def _match_mode(spec) -> str:
    return str(spec)


def _predicate(rule, outcome: Outcome) -> str:
    """The decision rule, in words, specialised with the rule's values."""
    if outcome is Outcome.MATCHED:
        if rule.preferred_value:
            return (f"every found value matches preferred_value "
                    f"{rule.preferred_value} ({_match_mode(rule.preferred_match)})")
        return "config is present"
    if outcome is Outcome.MATCHED_NON_PREFERRED:
        return (f"a found value matches non_preferred_value "
                f"{rule.non_preferred_value} "
                f"({_match_mode(rule.non_preferred_match)})")
    if outcome is Outcome.NOT_MATCHED_PREFERRED:
        return (f"a found value does not match preferred_value "
                f"{rule.preferred_value} ({_match_mode(rule.preferred_match)})")
    if outcome is Outcome.NOT_PRESENT:
        return (f"config is absent "
                f"(not_present_pass={str(rule.not_present_pass).lower()})")
    if outcome is Outcome.PRESENT_UNEXPECTEDLY:
        return "path exists but the rule requires absence"
    if outcome is Outcome.MISSING_DEPENDENCY:
        required = getattr(rule, "require_other_configs", None) or []
        return f"required co-configurations are absent: {list(required)}"
    if outcome is Outcome.METADATA_MISMATCH:
        return "file ownership/permissions differ from the rule's requirement"
    if outcome is Outcome.PLUGIN_UNAVAILABLE:
        return "runtime state is unavailable for this entity"
    if outcome is Outcome.EVALUATION_ERROR:
        return "rule evaluation raised an exception"
    if outcome is Outcome.COMPOSITE:
        return f"composite expression: {getattr(rule, 'expression', '')}"
    return outcome.value


def _expected(rule) -> dict:
    expected: dict = {}
    if rule.preferred_value:
        expected["preferred_value"] = list(rule.preferred_value)
        expected["preferred_match"] = _match_mode(rule.preferred_match)
    if rule.non_preferred_value:
        expected["non_preferred_value"] = list(rule.non_preferred_value)
        expected["non_preferred_match"] = _match_mode(rule.non_preferred_match)
    if not expected:
        expected["presence"] = (
            "must be absent" if rule.not_present_pass else "must be present"
        )
    return expected


def build_provenance(
    result: RuleResult,
    *,
    route: str,
    reader: ExcerptReader | None = None,
    frame=None,
    referents: list[dict] | None = None,
) -> ProvenanceRecord:
    """Derive a record from a finished result (post-hoc, evaluator-free)."""
    anchors = []
    for item in result.evidence:
        span = item.span if isinstance(item.span, SourceSpan) else None
        excerpt = ""
        if reader is not None and span is not None:
            excerpt = reader.excerpt(frame, item.file, span)
        anchors.append(SourceAnchor(
            file=item.file,
            path=item.location,
            value=item.value,
            span=span,
            excerpt=excerpt,
        ))
    return ProvenanceRecord(
        route=route,
        origin=route,
        predicate=_predicate(result.rule, result.outcome),
        observed=[item.value for item in result.evidence],
        expected=_expected(result.rule),
        anchors=anchors,
        referents=list(referents) if referents else [],
    )
