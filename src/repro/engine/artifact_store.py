"""Persistent content-addressed artifact store behind the ParseCache.

The in-memory :class:`~repro.engine.parse_cache.ParseCache` dedupes
parses *within* one process; it evaporates when the process exits and is
never shared between the worker processes of ``--executor process``.
This module adds the durable tier the fleet actually wants: an on-disk
sqlite database (WAL mode, safe for concurrent readers/writers across
processes) keyed by ``(sha256(content), artifact kind, parser name,
lens version)`` holding pickled :class:`~repro.augtree.tree.ConfigTree`
and :class:`~repro.schema.table.SchemaTable` artifacts.  Duplicate
content then parses once per fleet *ever* -- not once per process per
run -- which is what makes cold worker processes and repeated monitor
cycles cheap.

Design points:

- **Keys are content addresses.**  The text digest comes from
  :func:`~repro.engine.parse_cache.content_digest` so the store composes
  with the in-memory cache without re-hashing.  ``LENS_VERSION`` is part
  of the key: bump it whenever lens/normalizer semantics change and old
  artifacts silently become misses instead of wrong answers.
- **Size-bounded LRU.**  Every hit touches ``last_used``; inserts that
  push the table over ``max_bytes`` evict oldest-used rows until the
  budget holds again.
- **Corruption never breaks a scan.**  Unpicklable/truncated blobs are
  deleted and counted as ``load_errors`` (the caller just re-parses); a
  broken database file disables the store for the process with one
  warning.  The store is an accelerator, not a source of truth.
"""

from __future__ import annotations

import logging
import pickle
import sqlite3
import threading
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any

from repro.chaos.fabric import _CHAOS, absorbed as _chaos_absorbed
from repro.chaos.quarantine import is_corruption, quarantine_database

log = logging.getLogger("repro.artifact_store")

#: Versions the *meaning* of stored artifacts.  Part of every key; bump
#: when lens output or the pickled artifact layout changes incompatibly.
LENS_VERSION = "1"

#: Default on-disk budget for pickled artifacts (the store evicts
#: least-recently-used rows beyond this).  Measured against the sum of
#: blob sizes, not the sqlite file size (WAL/freelist overhead varies).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Filename used when the store is anchored under a ``--state-dir``.
STORE_FILE = "artifacts.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS artifacts (
    digest    TEXT NOT NULL,
    kind      TEXT NOT NULL,
    parser    TEXT NOT NULL,
    version   TEXT NOT NULL,
    blob      BLOB NOT NULL,
    nbytes    INTEGER NOT NULL,
    src_bytes INTEGER NOT NULL,
    last_used INTEGER NOT NULL,
    PRIMARY KEY (digest, kind, parser, version)
);
CREATE INDEX IF NOT EXISTS artifacts_lru ON artifacts (last_used);
"""


@dataclass
class ArtifactStoreStats:
    """Point-in-time counters of one :class:`ArtifactStore`.

    Mutable (unlike ``CacheStats``) so the process executor can merge
    per-shard worker deltas into one fleet-wide rollup with :meth:`add`.
    """

    hits: int = 0
    misses: int = 0
    stored: int = 0
    evictions: int = 0
    load_errors: int = 0
    store_errors: int = 0
    bytes_loaded: int = 0    # source-config bytes whose parse was skipped
    bytes_stored: int = 0    # pickled-artifact bytes written
    entries: int = 0         # rows currently on disk
    disk_bytes: int = 0      # sum of blob sizes currently on disk

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def add(self, other: "ArtifactStoreStats") -> None:
        """Fold another stats snapshot's counters into this one.

        Gauges (``entries``/``disk_bytes``) take the max rather than the
        sum -- every process sees the same shared database, so summing
        them would multiply the table by the worker count.
        """
        for f in fields(self):
            if f.name in ("entries", "disk_bytes"):
                setattr(self, f.name,
                        max(getattr(self, f.name), getattr(other, f.name)))
            else:
                setattr(self, f.name,
                        getattr(self, f.name) + getattr(other, f.name))

    def delta_since(self, base: "ArtifactStoreStats") -> "ArtifactStoreStats":
        """Counters accumulated since ``base`` (gauges keep the current
        value) -- how workers report per-shard store activity."""
        out = ArtifactStoreStats()
        for f in fields(self):
            if f.name in ("entries", "disk_bytes"):
                setattr(out, f.name, getattr(self, f.name))
            else:
                setattr(out, f.name,
                        getattr(self, f.name) - getattr(base, f.name))
        return out

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def render(self) -> str:
        return (
            f"artifact store: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.1%} hit rate), {self.stored} stored, "
            f"{self.evictions} evicted, {self.load_errors} load errors, "
            f"{self.entries} entries / {self.disk_bytes:,} B on disk"
        )


class ArtifactStore:
    """Durable second tier for parsed config artifacts.

    Thread-safe within a process (one connection guarded by a lock);
    safe across processes via sqlite WAL + busy timeout.  Each worker
    process opens its own store on the same path.
    """

    def __init__(self, path: str | Path, *,
                 max_bytes: int = DEFAULT_MAX_BYTES):
        self.path = str(path)
        self.max_bytes = max(0, int(max_bytes))
        self._lock = threading.Lock()
        self._conn: sqlite3.Connection | None = None
        self._broken = False
        self._clock = 0  # monotonic LRU stamp, seeded from the table
        self._hits = 0
        self._misses = 0
        self._stored = 0
        self._evictions = 0
        self._load_errors = 0
        self._store_errors = 0
        self._bytes_loaded = 0
        self._bytes_stored = 0
        try:
            self._reopen()
        except (sqlite3.Error, OSError) as error:
            self._handle_error("open", error)

    def _reopen(self) -> None:
        """(Re)connect to the database file, creating it if missing."""
        Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.path, timeout=10.0,
                               check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=10000")
        conn.executescript(_SCHEMA)
        row = conn.execute(
            "SELECT COALESCE(MAX(last_used), 0) FROM artifacts"
        ).fetchone()
        self._clock = int(row[0])
        conn.commit()
        self._conn = conn
        self._broken = False

    # ---- store/load ----------------------------------------------------

    def load(self, key: tuple[str, str, str], nbytes: int) -> Any | None:
        """Return the stored artifact for ``(digest, kind, parser)``.

        ``nbytes`` is the source-config byte count, credited to
        ``bytes_loaded`` on a hit.  Any failure -- missing row, corrupt
        blob, database error -- returns ``None`` so the caller falls
        back to parsing.
        """
        conn = self._conn
        if conn is None:
            return None
        digest, kind, parser = key
        try:
            with self._lock:
                if _CHAOS.armed:
                    # Injected corruption surfaces exactly where a real
                    # "database disk image is malformed" would.
                    _CHAOS.fire("store.sqlite", self.path)
                row = conn.execute(
                    "SELECT blob FROM artifacts WHERE digest=? AND kind=?"
                    " AND parser=? AND version=?",
                    (digest, kind, parser, LENS_VERSION),
                ).fetchone()
                if row is None:
                    self._misses += 1
                    return None
                self._clock += 1
                conn.execute(
                    "UPDATE artifacts SET last_used=? WHERE digest=? AND"
                    " kind=? AND parser=? AND version=?",
                    (self._clock, digest, kind, parser, LENS_VERSION),
                )
                conn.commit()
        except sqlite3.Error as error:
            self._handle_error("load", error)
            return None
        try:
            value = pickle.loads(row[0])
        except Exception:
            # Truncated or stale blob: drop the row and re-parse.
            with self._lock:
                self._load_errors += 1
                self._misses += 1
                try:
                    conn.execute(
                        "DELETE FROM artifacts WHERE digest=? AND kind=?"
                        " AND parser=? AND version=?",
                        (digest, kind, parser, LENS_VERSION),
                    )
                    conn.commit()
                except sqlite3.Error as error:
                    self._handle_error("load", error)
            return None
        with self._lock:
            self._hits += 1
            self._bytes_loaded += nbytes
        return value

    def save(self, key: tuple[str, str, str], value: Any,
             nbytes: int) -> None:
        """Persist a parsed artifact; failures only count, never raise."""
        conn = self._conn
        if conn is None:
            return
        digest, kind, parser = key
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            with self._lock:
                self._store_errors += 1
            return
        if self.max_bytes and len(blob) > self.max_bytes:
            return  # would evict the whole store to fit one artifact
        try:
            with self._lock:
                if _CHAOS.armed:
                    _CHAOS.fire("store.sqlite", self.path)
                self._clock += 1
                conn.execute(
                    "INSERT OR REPLACE INTO artifacts (digest, kind, parser,"
                    " version, blob, nbytes, src_bytes, last_used)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (digest, kind, parser, LENS_VERSION, blob, len(blob),
                     nbytes, self._clock),
                )
                self._stored += 1
                self._bytes_stored += len(blob)
                if self.max_bytes:
                    self._evict_locked(conn)
                conn.commit()
        except sqlite3.Error as error:
            self._handle_error("save", error)

    def _evict_locked(self, conn: sqlite3.Connection) -> None:
        total = conn.execute(
            "SELECT COALESCE(SUM(nbytes), 0) FROM artifacts").fetchone()[0]
        while total > self.max_bytes:
            row = conn.execute(
                "SELECT digest, kind, parser, version, nbytes FROM artifacts"
                " ORDER BY last_used LIMIT 1").fetchone()
            if row is None:
                break
            conn.execute(
                "DELETE FROM artifacts WHERE digest=? AND kind=? AND"
                " parser=? AND version=?", row[:4])
            total -= row[4]
            self._evictions += 1

    # ---- lifecycle / stats ---------------------------------------------

    def _handle_error(self, op: str, error: Exception) -> None:
        """Route a database failure: corruption quarantines the file and
        rebuilds cold; anything else disables the store for the process.

        The store is an accelerator -- a quarantined database just means
        the fleet re-parses until the new file warms up, while the moved
        ``*.quarantined.*`` file stays on disk for the postmortem.
        """
        if is_corruption(error):
            _chaos_absorbed(error)   # credit an injected corruption fault
            conn, self._conn = self._conn, None
            if conn is not None:
                try:
                    conn.close()
                except Exception:
                    pass
            moved = quarantine_database(self.path, reason=f"{op}: {error}")
            log.warning(
                "artifact store %s corrupt during %s (%s); quarantined to "
                "%s, rebuilding cold", self.path, op, error, moved)
            try:
                self._reopen()
                return
            except (sqlite3.Error, OSError) as reopen_error:
                error = reopen_error
        self._mark_broken(op, error)

    def _mark_broken(self, op: str, error: Exception) -> None:
        if not self._broken:
            self._broken = True
            log.warning(
                "artifact store disabled after %s failure on %s: %s",
                op, self.path, error)
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except Exception:
                pass

    @property
    def broken(self) -> bool:
        return self._broken

    def stats(self) -> ArtifactStoreStats:
        entries = disk = 0
        conn = self._conn
        if conn is not None:
            try:
                with self._lock:
                    entries, disk = conn.execute(
                        "SELECT COUNT(*), COALESCE(SUM(nbytes), 0)"
                        " FROM artifacts").fetchone()
            except sqlite3.Error as error:
                self._handle_error("stats", error)
        with self._lock:
            return ArtifactStoreStats(
                hits=self._hits,
                misses=self._misses,
                stored=self._stored,
                evictions=self._evictions,
                load_errors=self._load_errors,
                store_errors=self._store_errors,
                bytes_loaded=self._bytes_loaded,
                bytes_stored=self._bytes_stored,
                entries=int(entries),
                disk_bytes=int(disk),
            )

    def absorb_counters(self, delta: "ArtifactStoreStats | None") -> None:
        """Fold a worker process's counter deltas into this store's
        in-memory tallies, so :meth:`stats` and the pull-style metrics
        reflect fleet-wide activity rather than just the parent's own
        lookups.  Gauges (entries, disk bytes) stay local -- they are
        read from sqlite, which the workers share."""
        if delta is None:
            return
        with self._lock:
            self._hits += delta.hits
            self._misses += delta.misses
            self._stored += delta.stored
            self._evictions += delta.evictions
            self._load_errors += delta.load_errors
            self._store_errors += delta.store_errors
            self._bytes_loaded += delta.bytes_loaded
            self._bytes_stored += delta.bytes_stored

    def attach_to(self, registry) -> None:
        """Register pull-style ``repro_artifact_*`` metrics (same
        scrape-time refresh pattern as :meth:`ParseCache.attach_to`)."""
        hits = registry.counter(
            "repro_artifact_hits_total",
            "Artifact-store lookups served without re-parsing.")
        misses = registry.counter(
            "repro_artifact_misses_total",
            "Artifact-store lookups that fell through to a parser.")
        stored = registry.counter(
            "repro_artifact_stored_total",
            "Parsed artifacts persisted to the store.")
        evictions = registry.counter(
            "repro_artifact_evictions_total",
            "Artifacts dropped by the byte-budget LRU.")
        load_errors = registry.counter(
            "repro_artifact_load_errors_total",
            "Stored artifacts that failed to deserialize (deleted).")
        bytes_loaded = registry.counter(
            "repro_artifact_loaded_bytes_total",
            "Source-config bytes whose parse was served from the store.")
        bytes_stored = registry.counter(
            "repro_artifact_stored_bytes_total",
            "Pickled-artifact bytes written to the store.")
        entries = registry.gauge(
            "repro_artifact_entries",
            "Artifacts currently persisted in the store.")
        disk_bytes = registry.gauge(
            "repro_artifact_disk_bytes",
            "Pickled-artifact bytes currently on disk.")

        def collect() -> None:
            stats = self.stats()
            hits.set(stats.hits)
            misses.set(stats.misses)
            stored.set(stats.stored)
            evictions.set(stats.evictions)
            load_errors.set(stats.load_errors)
            bytes_loaded.set(stats.bytes_loaded)
            bytes_stored.set(stats.bytes_stored)
            entries.set(stats.entries)
            disk_bytes.set(stats.disk_bytes)

        registry.register_collector(f"artifact_store:{id(self)}", collect)

    def clear(self) -> None:
        conn = self._conn
        if conn is None:
            return
        try:
            with self._lock:
                conn.execute("DELETE FROM artifacts")
                conn.commit()
        except sqlite3.Error as error:
            self._handle_error("clear", error)

    def close(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except Exception:
                pass

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def store_path_for(state_dir: str | Path) -> Path:
    """Where a ``--state-dir`` anchored store lives on disk."""
    return Path(state_dir) / STORE_FILE
