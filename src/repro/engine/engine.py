"""The ConfigValidator engine: manifests + CVL rules applied to frames.

Pipeline per the paper's Figure 1: the *Config Extractor* (crawler)
produced a frame; the engine drives the *Data Normalizer* (lenses /
schema parsers) and the *Rule Engine* (per-type evaluators, composite
conjunction/disjunction across entities), and hands results to *Output
Processing* (:mod:`repro.engine.report`).

The same engine instance validates hosts, images, containers, and cloud
frames; entities differ only in what their frames contain.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable

from repro.chaos.deadline import RunDeadline
from repro.chaos.fabric import _CHAOS, delta_is_empty
from repro.chaos.stats import DegradationStats
from repro.errors import EngineError, EntityNotFound, ReproError
from repro.augtree.lenses import LensRegistry
from repro.crawler.crawler import Crawler
from repro.crawler.entities import Entity
from repro.crawler.fingerprint import FrameFingerprint
from repro.crawler.frame import ConfigFrame
from repro.cvl.composite_expr import (
    evaluate_composite,
    referenced_entities,
    referenced_pairs,
)
from repro.cvl.loader import load_rules
from repro.cvl.manifest import Manifest, load_manifests
from repro.cvl.model import (
    CompositeRule,
    PathRule,
    Rule,
    RuleSet,
    SchemaRule,
    ScriptRule,
    TreeRule,
)
from repro.engine.artifact_store import ArtifactStore
from repro.engine.evaluators import (
    _error_result,
    evaluate_path,
    evaluate_schema,
    evaluate_script,
    evaluate_tree,
)
from repro.engine.incremental import (
    DependencyRecorder,
    IncrementalRunStats,
    VerdictStore,
    ruleset_digest,
)
from repro.engine.normalizer import Normalizer
from repro.engine.parse_cache import DEFAULT_CACHE_SIZE, CacheStats, ParseCache
from repro.engine.plan import (
    PlanRunStats,
    RulePlan,
    attach_plan_metrics,
    plan_cache_stats,
    plan_for,
)
from repro.engine.provenance import (
    ROUTE_COMPOSITE,
    ROUTE_DIRECT,
    ROUTE_FUSED,
    ExcerptReader,
    build_provenance,
)
from repro.engine.stages import StageTimings
from repro.engine.results import (
    Evidence,
    Outcome,
    RuleResult,
    ValidationReport,
    Verdict,
)
from repro.schema import SchemaParserRegistry
from repro.telemetry import DISABLED, Telemetry, get_logger

log = get_logger("engine")

#: Enum.value goes through a descriptor; the hot flush path uses this
#: precomputed map instead.
_VERDICT_STR = {verdict: verdict.value for verdict in Verdict}

#: Resolves a cvl_file reference to YAML text.
Resolver = Callable[[str], str]


class _RunContext:
    """Composite-expression context for one validation run."""

    def __init__(self, validator: "ConfigValidator", normalizer: Normalizer):
        self._validator = validator
        self._normalizer = normalizer
        #: (component, rule name) -> bool | None
        self.verdicts: dict[tuple[str, str], bool | None] = {}
        #: component -> list of (frame, manifest) pairs it was evaluated on
        self.placements: dict[str, list[tuple[ConfigFrame, Manifest]]] = {}

    def record(self, manifest: Manifest, frame: ConfigFrame,
               results: list[RuleResult]) -> None:
        self.placements.setdefault(manifest.entity, []).append((frame, manifest))
        for result in results:
            if result.verdict is Verdict.COMPLIANT:
                verdict: bool | None = True
            elif result.verdict is Verdict.NONCOMPLIANT:
                verdict = False
            else:
                verdict = None
            key = (result.entity, result.rule.name)
            # Cross-frame merge: a composite term holds if the per-entity
            # rule is COMPLIANT on *some* entity of the group (the paper's
            # Listing 1 reads "is ip_forward disabled [on the host that
            # carries sysctl]", not "on every frame in the run").
            existing = self.verdicts.get(key)
            if existing is True:
                continue
            if verdict is True or existing is None:
                self.verdicts[key] = verdict

    # -- CompositeContext protocol ------------------------------------------

    def rule_verdict(self, entity: str, config: str) -> bool | None:
        return self.verdicts.get((entity, config))

    def lookup_value(
        self, entity: str, config: str, config_path: str | None
    ) -> str | None:
        for frame, manifest in self.placements.get(entity, []):
            value = self._lookup_in(frame, manifest, config, config_path)
            if value is not None:
                return value
        return None

    def _lookup_in(
        self,
        frame: ConfigFrame,
        manifest: Manifest,
        config: str,
        config_path: str | None,
    ) -> str | None:
        expression = f"{config_path}/{config}" if config_path else f"**/{config}"
        files = self._normalizer.candidate_files(
            frame, manifest.config_search_paths, []
        )
        for path in files:
            tree = self._normalizer.try_tree(frame, path, manifest.lens)
            if tree is None:
                continue
            node = tree.first(expression)
            if node is not None:
                return node.value if node.value is not None else ""
        # Fall back to plugin runtime state under the component's namespace
        # (lets composites reference live state, e.g. sysctl values).
        recorder = self._normalizer.recorder
        if recorder is not None:
            recorder.record_runtime(frame, manifest.entity)
        namespace = frame.runtime.get(manifest.entity)
        if namespace is not None:
            return namespace.get(config)
        return None


#: Default-argument sentinel for :meth:`ConfigValidator._prepare_run`.
_UNSET = object()


class _RunPrep:
    """Everything one validation run's per-frame evaluation needs.

    Built by :meth:`ConfigValidator._prepare_run` and consumed by
    :meth:`ConfigValidator._evaluate_frame_rules` -- both the thread
    path's closures and the process backend's worker entry
    (:mod:`repro.exec.worker`) go through the same pair, which is what
    makes cross-backend reports byte-identical by construction.
    """

    __slots__ = (
        "tags", "use_plans", "provenance", "excerpts", "store", "recorder",
        "inc_stats", "fingerprints", "clean_frames", "digests", "plans",
        "plan_stats", "normalizer", "timings", "deadline",
    )

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields[name])


class ConfigValidator:
    """Applies CVL rule packs to configuration frames."""

    def __init__(
        self,
        *,
        resolver: Resolver | None = None,
        lenses: LensRegistry | None = None,
        schemas: SchemaParserRegistry | None = None,
        crawler: Crawler | None = None,
        parse_cache: ParseCache | None = None,
        cache_size: int | None = None,
        workers: int = 1,
        telemetry: Telemetry | None = None,
        verdict_store: VerdictStore | None = None,
        use_plans: bool = True,
        provenance: bool = False,
        executor: str = "thread",
        shard_size: int | None = None,
        artifact_store: ArtifactStore | str | Path | None = None,
        deadline_s: float | None = None,
        frame_deadline_s: float | None = None,
    ):
        self._resolver = resolver
        self._lenses = lenses
        self._schemas = schemas
        self.telemetry = telemetry or DISABLED
        self._crawler = crawler or Crawler(telemetry=self.telemetry)
        self._manifests: dict[str, Manifest] = {}
        self._rulesets: dict[str, RuleSet] = {}
        #: Single-flight guard for lazy ruleset loading (validate_frames
        #: and rule_count may race it from worker threads).
        self._ruleset_lock = threading.Lock()
        #: Persistent content-addressed artifact tier behind the parse
        #: cache (``--artifact-store``); accepts a built store or a path.
        if isinstance(artifact_store, (str, Path)):
            artifact_store = ArtifactStore(artifact_store)
        if parse_cache is None:
            parse_cache = ParseCache(
                DEFAULT_CACHE_SIZE if cache_size is None else cache_size,
                store=artifact_store,
            )
        elif artifact_store is None:
            artifact_store = parse_cache.store
        self.artifact_store = artifact_store
        #: Content-addressed parse cache shared across frames and runs.
        self.parse_cache = parse_cache
        #: Execution backend for frame fan-out: ``"thread"`` (the
        #: default -- GIL threads, cheap, I/O overlap) or ``"process"``
        #: (shards frames across worker processes; see
        #: :mod:`repro.exec`).  An :class:`~repro.exec.ExecutorBackend`
        #: instance is accepted too.
        self.executor = executor
        #: Frames per process shard (None = auto-sized per cycle).
        self.shard_size = shard_size
        self._exec_backend = None
        #: Frames' result lists awaiting scrape-time tallying into the
        #: per-rule counter/histogram (see :meth:`_collect_rule_metrics`).
        self._pending_rule_metrics: list[list[RuleResult]] = []
        self._pending_rule_lock = threading.Lock()
        #: Cross-cycle verdict store; None means every run is a full
        #: revalidation (the default).
        self.verdict_store = verdict_store
        #: Compile rulesets into fused :class:`RulePlan`s (the default);
        #: ``use_plans=False`` is the ``--no-plan`` reference path.
        self.use_plans = bool(use_plans)
        #: Attach :class:`ProvenanceRecord`s to every result (``--provenance``).
        #: Off by default: reports stay byte-identical to provenance-free runs.
        self.provenance = bool(provenance)
        if self.telemetry.enabled:
            attach_plan_metrics(self.telemetry.metrics)
            self.parse_cache.attach_to(self.telemetry.metrics)
            self.telemetry.metrics.register_collector(
                f"rule-metrics-{id(self)}", self._collect_rule_metrics
            )
            if verdict_store is not None:
                verdict_store.attach_to(self.telemetry.metrics)
            if self.artifact_store is not None:
                self.artifact_store.attach_to(self.telemetry.metrics)
        self.workers = max(1, workers)
        #: Soft cycle / per-frame deadlines (``--deadline`` /
        #: ``--frame-deadline``).  None = unbounded.  Over-deadline
        #: frames are cancelled at the next rule boundary and reported
        #: as quarantined ERROR verdicts; the cycle always completes.
        self.deadline_s = deadline_s
        self.frame_deadline_s = frame_deadline_s

    def close(self) -> None:
        """Release process pools and store connections (idempotent)."""
        backend, self._exec_backend = self._exec_backend, None
        if backend is not None:
            backend.close()
        if self.artifact_store is not None:
            self.artifact_store.close()

    def _resolve_backend(self, executor):
        """Map an ``executor`` setting to a backend instance (or None
        for the built-in thread path)."""
        if executor is None:
            executor = self.executor
        if executor is None or executor == "thread":
            return None
        if executor == "process":
            if self._exec_backend is None:
                from repro.exec import ProcessBackend

                self._exec_backend = ProcessBackend(
                    shard_size=self.shard_size)
            return self._exec_backend
        if isinstance(executor, str):
            raise EngineError(f"unknown executor backend {executor!r}")
        return executor

    def _collect_rule_metrics(self) -> None:
        """Fold pending per-rule results into counters/histograms.

        Registered as a pull-style collector (like the parse-cache
        stats): the scan cycle's hot path only appends each frame's
        result list here, and the verdict tally plus latency histogram
        are computed when the metrics are actually scraped or rendered.
        """
        with self._pending_rule_lock:
            batches = self._pending_rule_metrics
            self._pending_rule_metrics = []
        if not batches:
            return
        rules_total = self.telemetry.metrics.counter(
            "repro_rules_evaluated_total",
            "Rule evaluations by terminal verdict.",
            labels=("verdict",),
        )
        rule_hist = self.telemetry.metrics.histogram(
            "repro_rule_eval_seconds", "Per-rule evaluation latency."
        )
        verdict_str = _VERDICT_STR
        results = [r for batch in batches for r in batch]
        verdicts = [verdict_str[r.verdict] for r in results]
        # Verdict strings are shared singletons, so list.count is a
        # C-level identity scan -- cheaper than a Python tally loop for
        # a handful of distinct verdicts.
        for verdict in set(verdicts):
            rules_total.inc(verdicts.count(verdict), verdict=verdict)
        rule_hist.observe_batch([r.duration_s for r in results])

    # ---- configuration ----------------------------------------------------

    def add_manifest(self, manifest: Manifest) -> None:
        self._manifests[manifest.entity] = manifest

    def add_manifest_text(self, text: str, source: str = "<memory>") -> list[Manifest]:
        manifests = load_manifests(text, source)
        for manifest in manifests:
            self.add_manifest(manifest)
        return manifests

    def add_ruleset(self, manifest: Manifest, ruleset: RuleSet) -> None:
        """Attach an already-built ruleset (bypasses the resolver)."""
        self.add_manifest(manifest)
        self._rulesets[manifest.entity] = ruleset

    def manifests(self) -> list[Manifest]:
        return [self._manifests[name] for name in sorted(self._manifests)]

    def manifest(self, entity: str) -> Manifest:
        try:
            return self._manifests[entity]
        except KeyError:
            raise EntityNotFound(f"no manifest for entity {entity!r}") from None

    def ruleset_for(self, manifest: Manifest) -> RuleSet:
        """Load (and cache) the rule set behind a manifest.

        Idempotent under concurrency: worker threads racing a cold entry
        single-flight through a lock, so the resolver runs exactly once
        per pack and every caller sees the same :class:`RuleSet` object.
        """
        cached = self._rulesets.get(manifest.entity)
        if cached is not None:
            return cached
        with self._ruleset_lock:
            cached = self._rulesets.get(manifest.entity)
            if cached is not None:
                return cached
            ruleset = self._load_ruleset(manifest)
            self._rulesets[manifest.entity] = ruleset
            return ruleset

    def _load_ruleset(self, manifest: Manifest) -> RuleSet:
        if self._resolver is None:
            raise EngineError(
                f"manifest {manifest.entity!r} references {manifest.cvl_file!r} "
                f"but the validator has no resolver"
            )
        text = self._resolver(manifest.cvl_file)
        ruleset = load_rules(
            text,
            source=manifest.cvl_file,
            entity=manifest.entity,
            resolver=self._resolver,
        )
        if manifest.parent_cvl_file and ruleset.parent_source is None:
            from repro.cvl.loader import merge_inherited

            parent_text = self._resolver(manifest.parent_cvl_file)
            parent = load_rules(
                parent_text,
                source=manifest.parent_cvl_file,
                entity=manifest.entity,
                resolver=self._resolver,
            )
            ruleset = merge_inherited(parent, ruleset)
        return ruleset

    def cache_stats(self) -> CacheStats:
        """Counters of the shared content-addressed parse cache."""
        return self.parse_cache.stats()

    def rule_count(self) -> int:
        """Total enabled rules across all manifests."""
        return sum(
            len(self.ruleset_for(manifest).enabled_rules())
            for manifest in self.manifests()
            if manifest.enabled
        )

    # ---- validation -----------------------------------------------------

    def validate_frame(
        self,
        frame: ConfigFrame,
        *,
        tags: list[str] | None = None,
        include_composites: bool = True,
        timings: StageTimings | None = None,
        use_plans: bool | None = None,
        provenance: bool | None = None,
    ) -> ValidationReport:
        """Validate one frame against every enabled manifest."""
        return self.validate_frames([frame], tags=tags,
                                    include_composites=include_composites,
                                    timings=timings, use_plans=use_plans,
                                    provenance=provenance)

    def validate_frames(
        self,
        frames: list[ConfigFrame],
        *,
        tags: list[str] | None = None,
        include_composites: bool = True,
        workers: int | None = None,
        timings: StageTimings | None = None,
        use_plans: bool | None = None,
        provenance: bool | None = None,
        executor: str | None = None,
    ) -> ValidationReport:
        """Validate a group of frames together.

        Per-entity rules run against every frame; composite rules run once
        over the merged cross-frame context (this is how a rule can span a
        MySQL container, a host's sysctl, and an nginx container).

        With ``workers > 1`` frames fan out on a thread pool (sharing the
        content-addressed parse cache), then a deterministic merge barrier
        records results in document order -- composite rules see the
        identical merged context and the report is byte-for-byte the same
        as the sequential path, regardless of completion order.

        ``use_plans`` (default: the constructor setting) routes tree
        rules through compiled fused plans; reports are byte-identical
        either way -- ``use_plans=False`` exists for differential
        testing and as the ``--no-plan`` escape hatch.

        ``provenance`` (default: the constructor setting) attaches a
        :class:`~repro.engine.provenance.ProvenanceRecord` to every
        result; text/JSON/JUnit output is unchanged unless the renderer
        is asked to embed them.

        ``executor`` (default: the constructor setting) picks the
        fan-out backend: ``"thread"`` runs frames on a thread pool in
        this process; ``"process"`` shards them across worker processes
        (:mod:`repro.exec`) and falls back to the thread path when a
        payload cannot cross the process boundary.  Reports are
        byte-identical across backends and worker counts.
        """
        workers = self.workers if workers is None else max(1, workers)
        use_plans = self.use_plans if use_plans is None else bool(use_plans)
        provenance = (self.provenance if provenance is None
                      else bool(provenance))
        telemetry = self.telemetry
        enabled = telemetry.enabled
        spans = telemetry.spans
        if enabled:
            rules_total = telemetry.metrics.counter(
                "repro_rules_evaluated_total",
                "Rule evaluations by terminal verdict.",
                labels=("verdict",),
            )
            rule_hist = telemetry.metrics.histogram(
                "repro_rule_eval_seconds", "Per-rule evaluation latency."
            )
            frames_total = telemetry.metrics.counter(
                "repro_frames_scanned_total", "Frames validated."
            )
            busy_total = telemetry.metrics.counter(
                "repro_worker_busy_seconds_total",
                "Aggregate worker-seconds spent validating frames.",
            )
        prep = self._prepare_run(frames, tags=tags, use_plans=use_plans,
                                 provenance=provenance, timings=timings)
        if prep.deadline is not None:
            # The watchdog thread trips the cycle-expiry event even if a
            # single evaluation wedges between passive checks.  It is a
            # daemon bounded by the budget, so the no-stop exception
            # path cannot leak it past one cycle length.
            prep.deadline.start()
        # Degradation accounting: the delta over this run (including
        # worker-process deltas folded in by the backend) becomes the
        # report's DegradationStats.  One snapshot per cycle -- nothing
        # on the per-rule path.
        chaos_before = _CHAOS.account.snapshot()
        store = prep.store
        recorder = prep.recorder
        inc_stats = prep.inc_stats
        fingerprints = prep.fingerprints
        clean_frames = prep.clean_frames
        plan_stats = prep.plan_stats
        normalizer = prep.normalizer
        context = _RunContext(self, normalizer)
        target = ",".join(frame.describe() for frame in frames)
        report = ValidationReport(target=target)
        log.debug("validating %d frame(s) with %d worker(s)",
                  len(frames), workers)

        with spans.span("validate_frames", category="run",
                        frames=str(len(frames)),
                        workers=str(workers)) as run_span:
            # Composite rules are cross-entity: they belong to the run, not
            # to any one frame, so gather them up front from every enabled
            # pack.  This also pre-loads every ruleset before the fan-out.
            composites: list[tuple[Manifest, CompositeRule]] = []
            for manifest in self.manifests():
                if not manifest.enabled:
                    continue
                for rule in self.ruleset_for(manifest).enabled_rules():
                    if isinstance(rule, CompositeRule):
                        if tags and not any(rule.has_tag(tag) for tag in tags):
                            continue
                        composites.append((manifest, rule))

            def flush_rule_telemetry(results: list[RuleResult], *,
                                     record_spans: bool = True) -> None:
                """Three list appends per frame, nothing per rule.

                The results the frame just produced already carry
                everything telemetry needs (rule, verdict, timing), so
                each consumer takes the frame's result list by
                reference: the counter/histogram tally happens at scrape
                time (:meth:`_collect_rule_metrics`), span expansion at
                export time, profile aggregation at read time.

                ``record_spans=False`` skips only the span batch -- used
                for worker frames whose rule spans arrived inside the
                shard's telemetry capture (on worker pid lanes).
                """
                if not results:
                    return
                with self._pending_rule_lock:
                    self._pending_rule_metrics.append(results)
                telemetry.profiler.record_rules(results)
                if record_spans:
                    spans.record_rules(results)

            def validate_one(frame: ConfigFrame) -> tuple[
                list[tuple[Manifest, list[RuleResult]]],
                int,
                set[tuple[str, str]],
                PlanRunStats | None,
            ]:
                frame_started = time.perf_counter()
                # Explicit parent: with workers > 1 this runs on a pool
                # thread whose span stack is empty.
                with spans.span(frame.describe(), category="frame",
                                parent=run_span):
                    with spans.span("evaluate", category="stage"):
                        placements, fresh, replayed, recomputed, frame_plan = (
                            self._evaluate_frame_rules(frame, prep)
                        )
                        if enabled:
                            # Inside the stage span so rule spans parent
                            # to this frame's "evaluate".
                            flush_rule_telemetry(fresh)
                if enabled:
                    frames_total.inc()
                    busy_total.inc(time.perf_counter() - frame_started)
                return placements, replayed, recomputed, frame_plan

            def integrate_worker_frame(frame: ConfigFrame, freport,
                                       counted: bool = False) -> tuple[
                list[tuple[Manifest, list[RuleResult]]],
                int,
                set[tuple[str, str]],
                PlanRunStats | None,
            ]:
                """Fold one worker-evaluated frame back into this run:
                the same telemetry effects as :func:`validate_one`,
                minus the evaluation itself (that happened in a worker
                process; ``freport`` is its deserialized FrameReport).

                ``counted=True`` means the shard shipped a telemetry
                capture whose spans the backend already merged -- the
                rule spans will expand on the worker's pid lane, so only
                the span batch is skipped here.  Metric tallies,
                profiler rows, and the frame/busy counters are
                position-independent and always fold through this
                thread-identical path (the capture does not carry
                them)."""
                if enabled:
                    flush_rule_telemetry(freport.fresh,
                                         record_spans=not counted)
                    frames_total.inc()
                    busy_total.inc(freport.busy_s)
                placements = [
                    (self.manifest(entity), results)
                    for entity, results in freport.placements
                ]
                return (placements, freport.replayed,
                        set(freport.recomputed), freport.plan)

            per_frame = None
            exec_stats = None
            backend = self._resolve_backend(executor)
            if backend is not None and frames:
                per_frame, exec_stats = backend.run_cycle(
                    self, frames, prep,
                    validate_one=validate_one,
                    integrate=integrate_worker_frame,
                    workers=workers,
                )
            if per_frame is None:
                # Thread path: also the process backend's whole-cycle
                # fallback when a payload cannot cross processes.
                if workers > 1 and len(frames) > 1:
                    with ThreadPoolExecutor(
                        max_workers=min(workers, len(frames)),
                        thread_name_prefix="validate",
                    ) as pool:
                        per_frame = list(pool.map(validate_one, frames))
                else:
                    per_frame = [validate_one(frame) for frame in frames]

            # Deterministic merge barrier: document order, not completion
            # order.
            recomputed_pairs: set[tuple[str, str]] = set()
            for frame, (placements, replayed, recomputed, frame_plan) in zip(
                frames, per_frame
            ):
                for manifest, frame_results in placements:
                    context.record(manifest, frame, frame_results)
                    report.extend(frame_results)
                if plan_stats is not None and frame_plan is not None:
                    plan_stats.merge(frame_plan)
                if store is not None:
                    recomputed_pairs |= recomputed
                    inc_stats.rules_replayed += replayed
                    inc_stats.rules_evaluated += (
                        sum(len(fr) for _m, fr in placements) - replayed
                    )
                    if recomputed:
                        inc_stats.frames_dirty += 1
                    else:
                        inc_stats.frames_clean += 1

            if include_composites:
                with spans.span("composite", category="stage"):
                    for manifest, rule in composites:
                        if store is not None:
                            cached = store.fresh_composite(
                                manifest.entity, rule,
                                target=target, context=context,
                                fingerprints=fingerprints,
                                recomputed=recomputed_pairs,
                                clean_frames=clean_frames,
                                provenance=provenance,
                            )
                            if cached is not None:
                                report.add(cached)
                                inc_stats.composites_replayed += 1
                                continue
                        started = time.perf_counter()
                        if recorder is not None:
                            # Record the value lookups the expression
                            # performs (they may read files no per-entity
                            # rule touches).
                            with recorder.recording() as tape:
                                result = self._evaluate_composite(
                                    rule, manifest, context, target
                                )
                        else:
                            result = self._evaluate_composite(
                                rule, manifest, context, target
                            )
                        duration = time.perf_counter() - started
                        result.duration_s = duration
                        if provenance:
                            # Link the composite back to the per-entity
                            # verdicts its expression referenced.
                            result.provenance = build_provenance(
                                result, route=ROUTE_COMPOSITE,
                                referents=[
                                    {"entity": entity, "rule": config,
                                     "verdict": context.rule_verdict(
                                         entity, config)}
                                    for entity, config in referenced_pairs(
                                        rule.expression)
                                ],
                            )
                        if store is not None:
                            store.put_composite(
                                manifest.entity, rule,
                                target=target, context=context,
                                pairs=referenced_pairs(rule.expression),
                                tape=tape, fingerprints=fingerprints,
                                result=result,
                            )
                            inc_stats.composites_evaluated += 1
                        report.add(result)
                        if timings is not None:
                            timings.add("composite", duration)
                        if enabled:
                            verdict = result.verdict.value
                            rules_total.inc(verdict=verdict)
                            rule_hist.observe(duration)
                            telemetry.profiler.record(
                                "rule", f"{manifest.entity}/{rule.name}",
                                duration,
                                error=result.verdict is Verdict.ERROR,
                            )
                            spans.record(
                                rule.name, category="rule",
                                start_s=started, duration_s=duration,
                                entity=manifest.entity, verdict=verdict,
                            )

        if inc_stats is not None:
            if store is not None:
                inc_stats.store = store.stats()
            report.incremental = inc_stats
            if enabled:
                metrics = telemetry.metrics
                metrics.counter(
                    "repro_rules_skipped_total",
                    "Rule evaluations replayed from the verdict store.",
                ).inc(inc_stats.rules_replayed + inc_stats.composites_replayed)
                metrics.counter(
                    "repro_frames_dirty_total",
                    "Frames with at least one freshly evaluated rule.",
                ).inc(inc_stats.frames_dirty)
                metrics.counter(
                    "repro_frames_clean_total",
                    "Frames fully replayed from the verdict store.",
                ).inc(inc_stats.frames_clean)
                spans.record(
                    "incremental", category="stage",
                    start_s=time.perf_counter(), duration_s=0.0,
                    rules_replayed=str(inc_stats.rules_replayed),
                    frames_dirty=str(inc_stats.frames_dirty),
                    frames_clean=str(inc_stats.frames_clean),
                )
        if plan_stats is not None:
            plan_stats.cache = plan_cache_stats()
            report.plan = plan_stats
            if enabled:
                metrics = telemetry.metrics
                metrics.counter(
                    "repro_plan_rules_fused_total",
                    "Tree-rule evaluations served by fused plan units.",
                ).inc(plan_stats.rules_fused)
                metrics.counter(
                    "repro_plan_files_traversed_total",
                    "Files normalized and traversed once by fused units.",
                ).inc(plan_stats.files_traversed)
                metrics.counter(
                    "repro_plan_traversals_saved_total",
                    "Repeat per-rule tree traversals avoided by fusion.",
                ).inc(plan_stats.traversals_saved)
                spans.record(
                    "plan", category="stage",
                    start_s=time.perf_counter(), duration_s=0.0,
                    rules_fused=str(plan_stats.rules_fused),
                    units=str(plan_stats.units_evaluated),
                    traversals_saved=str(plan_stats.traversals_saved),
                )
        if exec_stats is not None:
            report.exec_stats = exec_stats
            if enabled:
                exec_stats.publish(telemetry)
        if prep.deadline is not None:
            prep.deadline.stop()
        chaos_delta = _CHAOS.account.delta_since(chaos_before)
        if _CHAOS.armed or not delta_is_empty(chaos_delta):
            degradation = DegradationStats.from_delta(
                chaos_delta,
                plan=_CHAOS.plan.name if _CHAOS.plan is not None else None,
            )
            report.degradation = degradation
            if enabled and degradation.degraded:
                metrics = telemetry.metrics
                injected = metrics.counter(
                    "repro_chaos_faults_injected_total",
                    "Faults injected by the armed chaos plan, by site.",
                    labels=("site",),
                )
                for site, count in degradation.faults_injected.items():
                    injected.inc(count, site=site)
                absorbed_counter = metrics.counter(
                    "repro_chaos_faults_absorbed_total",
                    "Injected faults absorbed by production error paths, "
                    "by site.",
                    labels=("site",),
                )
                for site, count in degradation.faults_absorbed.items():
                    absorbed_counter.inc(count, site=site)
                metrics.counter(
                    "repro_degraded_cycles_total",
                    "Validation cycles that completed degraded.",
                ).inc()
                metrics.counter(
                    "repro_degraded_frames_total",
                    "Frames quarantined by a deadline.",
                ).inc(degradation.frames_quarantined)
                metrics.counter(
                    "repro_degraded_deadline_cancellations_total",
                    "Rule evaluations cancelled at a deadline boundary.",
                ).inc(degradation.deadline_cancellations)
                metrics.counter(
                    "repro_degraded_stores_quarantined_total",
                    "Corrupt stores quarantined and reopened cold.",
                ).inc(degradation.stores_quarantined)
        return report

    def validate_entity(
        self, entity: Entity, *, tags: list[str] | None = None,
        timings: StageTimings | None = None,
    ) -> ValidationReport:
        """Crawl ``entity`` and validate the resulting frame."""
        if timings is not None:
            with timings.timer("crawl"):
                frame = self._crawler.crawl(entity)
        else:
            frame = self._crawler.crawl(entity)
        return self.validate_frame(frame, tags=tags, timings=timings)

    def validate_entities(
        self, entities: list[Entity], *, tags: list[str] | None = None,
        workers: int | None = None, timings: StageTimings | None = None,
    ) -> ValidationReport:
        """Crawl and validate a group of entities together (composites see
        the whole group)."""
        workers = self.workers if workers is None else max(1, workers)
        backend = self._resolve_backend(None)
        if timings is not None:
            with timings.timer("crawl"):
                frames = self._crawler.crawl_many(
                    entities, workers=workers, executor=backend,
                    init_source=self)
        else:
            frames = self._crawler.crawl_many(
                entities, workers=workers, executor=backend,
                init_source=self)
        return self.validate_frames(frames, tags=tags, workers=workers,
                                    timings=timings)

    # ---- internals ---------------------------------------------------------

    def _prepare_run(
        self,
        frames: list[ConfigFrame],
        *,
        tags: list[str] | None,
        use_plans: bool,
        provenance: bool,
        timings: StageTimings | None,
        store=_UNSET,
    ) -> _RunPrep:
        """Build the shared per-run evaluation state (:class:`_RunPrep`).

        ``store`` overrides the validator's verdict store; the process
        backend's workers pass the shard-local slice they were shipped
        (:meth:`~repro.engine.incremental.VerdictStore.import_slice`).
        """
        excerpts = ExcerptReader() if provenance else None
        # ---- incremental setup (no-ops without a verdict store) ----------
        if store is _UNSET:
            store = self.verdict_store
        recorder: DependencyRecorder | None = None
        inc_stats: IncrementalRunStats | None = None
        fingerprints: dict[str, FrameFingerprint] = {}
        clean_frames: frozenset[str] = frozenset()
        if store is not None:
            inc_stats = IncrementalRunStats()
            frame_keys = [frame.describe() for frame in frames]
            if len(set(frame_keys)) != len(frame_keys):
                # Two frames sharing an identity would alias each other's
                # stored verdicts; run a plain full validation instead.
                inc_stats.active = False
                inc_stats.reason = (
                    "duplicate frame identities in run; ran full validation"
                )
                log.warning(
                    "incremental disabled for this run: duplicate frame "
                    "identities"
                )
                store = None
            else:
                recorder = DependencyRecorder()
                fingerprints = {
                    key: frame.fingerprint()
                    for key, frame in zip(frame_keys, frames)
                }
                # One whole-frame digest per frame: frames it proves
                # unchanged skip all per-dependency verification below.
                clean_frames = store.begin_cycle({
                    key: fingerprints[key].frame_digest()
                    for key in frame_keys
                })

        # Ruleset digests key both the verdict store's invalidation and
        # the process-wide plan cache; computed once per run so pack
        # mutations between runs are always picked up.
        digests: dict[str, str] = {}
        if store is not None or use_plans:
            digests = {
                manifest.entity: ruleset_digest(
                    manifest, self.ruleset_for(manifest)
                )
                for manifest in self.manifests()
                if manifest.enabled
            }
        if store is not None:
            store.sync_rulesets(digests)
        plans: dict[str, RulePlan] = {}
        plan_stats: PlanRunStats | None = None
        if use_plans:
            plan_stats = PlanRunStats()
            for manifest in self.manifests():
                if not manifest.enabled:
                    continue
                plan = plan_for(manifest, self.ruleset_for(manifest),
                                digests[manifest.entity])
                if plan.usable:
                    plans[manifest.entity] = plan

        normalizer = Normalizer(self._lenses, self._schemas,
                                cache=self.parse_cache, timings=timings,
                                telemetry=self.telemetry, recorder=recorder)
        # Passive deadline checks ride in the prep so both backends see
        # them (worker processes get frame_deadline_s via InitConfig);
        # the parent's validate_frames starts the watchdog thread.
        deadline = None
        if self.deadline_s is not None or self.frame_deadline_s is not None:
            deadline = RunDeadline(cycle_s=self.deadline_s,
                                   frame_s=self.frame_deadline_s)
        return _RunPrep(
            tags=tags, use_plans=use_plans, provenance=provenance,
            excerpts=excerpts, store=store, recorder=recorder,
            inc_stats=inc_stats, fingerprints=fingerprints,
            clean_frames=clean_frames, digests=digests, plans=plans,
            plan_stats=plan_stats, normalizer=normalizer, timings=timings,
            deadline=deadline,
        )

    def _evaluate_frame_rules(
        self, frame: ConfigFrame, prep: _RunPrep
    ) -> tuple[
        list[tuple[Manifest, list[RuleResult]]],
        list[RuleResult],
        int,
        set[tuple[str, str]],
        PlanRunStats | None,
    ]:
        """Every per-entity rule of one frame, against shared run state.

        The single evaluation path behind both backends: the thread
        path's ``validate_one`` closure and the process backend's worker
        entry (:mod:`repro.exec.worker`) call this same method, so
        reports agree byte-for-byte across executors by construction.
        """
        store = prep.store
        recorder = prep.recorder
        fingerprints = prep.fingerprints
        clean_frames = prep.clean_frames
        normalizer = prep.normalizer
        timings = prep.timings
        tags = prep.tags
        provenance = prep.provenance
        plans = prep.plans
        deadline = prep.deadline
        # Monotonic stamp for the frame's deadline budget (RunDeadline
        # compares against time.monotonic, not perf_counter).
        frame_clock = time.monotonic() if deadline is not None else 0.0
        frame_cancelled = False
        placements: list[tuple[Manifest, list[RuleResult]]] = []
        #: Freshly evaluated results only -- replays carry no new
        #: timing or verdict information for telemetry.
        fresh: list[RuleResult] = []
        replayed = 0
        recomputed: set[tuple[str, str]] = set()
        frame_key = frame.describe()
        #: Per-frame planner stats, merged at the barrier (the
        #: run-wide object must not be mutated from workers).
        frame_plan = PlanRunStats() if plans else None
        #: Deferred-provenance markers, one shared tuple per
        #: route: attaching provenance costs a single attribute
        #: store per result, and the record itself is built on
        #: first read (export, store.put, explain).  Attached
        #: before store.put so replays rehydrate next cycle.
        direct_ctx = ((ROUTE_DIRECT, prep.excerpts, frame)
                      if provenance else None)
        fused_ctx = ((ROUTE_FUSED, prep.excerpts, frame)
                     if provenance else None)

        def run_rule(manifest: Manifest, rule: Rule) -> RuleResult:
            """One fresh per-rule evaluation -- the planned path
            routes fallback and non-tree rules through this same
            body, so results (tracebacks included) are identical
            to the unplanned engine."""
            started = time.perf_counter()
            if recorder is not None:
                tape, previous = recorder.begin()
                try:
                    self._record_intrinsic_deps(
                        recorder, rule, frame
                    )
                    result = self._evaluate_protected(
                        rule, frame, manifest, normalizer, frame_key)
                finally:
                    recorder.end(previous)
            else:
                result = self._evaluate_protected(
                    rule, frame, manifest, normalizer, frame_key)
            duration = time.perf_counter() - started
            result.duration_s = duration
            result.started_s = started
            if provenance:
                result._provenance = direct_ctx
            if store is not None:
                if not getattr(result, "volatile", False):
                    # Volatile results (injected faults degraded to
                    # ERROR verdicts) are never persisted: a chaos
                    # artifact must not replay into a fault-free cycle.
                    store.put(frame_key, manifest.entity, rule.name,
                              tape, fingerprints, result)
                recomputed.add((manifest.entity, rule.name))
            if timings is not None:
                timings.add("evaluate", duration)
            if result.verdict is Verdict.ERROR:
                log.warning(
                    "rule %s/%s errored on %s: %s",
                    manifest.entity, rule.name,
                    result.target, result.message,
                )
            return result

        for manifest in self.manifests():
            if not manifest.enabled:
                continue
            if not manifest.applies_to_kind(frame.entity_kind):
                continue
            ruleset = self.ruleset_for(manifest)
            present = None
            if store is not None:
                present = store.fresh_presence(
                    frame_key, manifest.entity, fingerprints,
                    clean_frames,
                )
            if present is None:
                if store is not None:
                    # Presence reads the search-path listing (via
                    # the normalizer hook) and the runtime
                    # namespace set; record both so the decision
                    # replays next cycle.
                    tape, previous = recorder.begin()
                    try:
                        recorder.record_runtime_keys(frame)
                        present = self._component_present(
                            frame, manifest, ruleset, normalizer
                        )
                    finally:
                        recorder.end(previous)
                    store.put_presence(frame_key, manifest.entity,
                                       tape, fingerprints, present)
                else:
                    present = self._component_present(
                        frame, manifest, ruleset, normalizer
                    )
            if not present:
                continue  # the component is not on this entity
            plan = plans.get(manifest.entity)
            if plan is None:
                # Unplanned reference path (``--no-plan``).
                frame_results: list[RuleResult] = []
                for rule in ruleset.enabled_rules():
                    if isinstance(rule, CompositeRule):
                        continue
                    if tags and not any(
                        rule.has_tag(tag) for tag in tags
                    ):
                        continue
                    if store is not None:
                        cached = store.fresh_result(
                            frame_key, manifest.entity, rule,
                            fingerprints, clean_frames,
                            provenance=provenance,
                        )
                        if cached is not None:
                            frame_results.append(cached)
                            replayed += 1
                            continue
                    if deadline is not None and deadline.should_cancel(
                            frame_clock):
                        result = self._cancelled_result(
                            manifest, rule, frame_key)
                        frame_cancelled = True
                    else:
                        result = run_rule(manifest, rule)
                    frame_results.append(result)
                    fresh.append(result)
                placements.append((manifest, frame_results))
                continue

            # ---- planned path --------------------------------
            selected: list[Rule] = []
            for rule in plan.rules:
                if isinstance(rule, CompositeRule):
                    continue
                if tags and not any(
                    rule.has_tag(tag) for tag in tags
                ):
                    continue
                selected.append(rule)
            results_by_name: dict[str, RuleResult] = {}
            replayed_names: set[str] = set()
            pending: list[Rule] = []
            for rule in selected:
                if store is not None:
                    cached = store.fresh_result(
                        frame_key, manifest.entity, rule,
                        fingerprints, clean_frames,
                        provenance=provenance,
                    )
                    if cached is not None:
                        results_by_name[rule.name] = cached
                        replayed_names.add(rule.name)
                        replayed += 1
                        continue
                pending.append(rule)
            fused_pending = {
                rule.name for rule in pending if plan.is_fused(rule)
            }
            runtime_fallback: frozenset[str] = frozenset()
            if fused_pending and deadline is not None and (
                    deadline.should_cancel(frame_clock)):
                # Over deadline before the fused pass: cancel the whole
                # unit cheaply; the per-rule loop below emits a
                # quarantined ERROR for each pending rule.
                fused_pending = set()
            if fused_pending:
                outputs, fell_back = plan.evaluate_fused(
                    frame, manifest, normalizer, fused_pending,
                    frame_key=(frame_key if store is not None
                               else None),
                    stats=frame_plan,
                )
                runtime_fallback = frozenset(fell_back)
                for rule, result, tape, duration, begun in outputs:
                    result.duration_s = duration
                    result.started_s = begun
                    if provenance:
                        result._provenance = fused_ctx
                    if store is not None:
                        if not getattr(result, "volatile", False):
                            store.put(frame_key, manifest.entity,
                                      rule.name, tape, fingerprints,
                                      result)
                        recomputed.add(
                            (manifest.entity, rule.name)
                        )
                    if timings is not None:
                        timings.add("evaluate", duration)
                    if result.verdict is Verdict.ERROR:
                        log.warning(
                            "rule %s/%s errored on %s: %s",
                            manifest.entity, rule.name,
                            result.target, result.message,
                        )
                    results_by_name[rule.name] = result
            for rule in pending:
                if rule.name in results_by_name:
                    continue  # served by a fused unit
                if deadline is not None and deadline.should_cancel(
                        frame_clock):
                    results_by_name[rule.name] = self._cancelled_result(
                        manifest, rule, frame_key)
                    frame_cancelled = True
                    continue
                if (rule.name in runtime_fallback
                        or rule.name in plan.fallback_names):
                    frame_plan.rules_fallback += 1
                else:
                    frame_plan.rules_direct += 1
                results_by_name[rule.name] = run_rule(manifest, rule)
            # Assemble in pack order so reports (and the fresh
            # list telemetry consumes) match the unplanned path.
            frame_results = [
                results_by_name[rule.name] for rule in selected
            ]
            fresh.extend(
                results_by_name[rule.name]
                for rule in selected
                if rule.name not in replayed_names
            )
            placements.append((manifest, frame_results))
        if frame_cancelled:
            _CHAOS.account.note_frame_quarantined()
            log.warning("frame %s quarantined: deadline exceeded, "
                        "remaining rules cancelled", frame_key)
        return placements, fresh, replayed, recomputed, frame_plan

    def _evaluate_protected(
        self,
        rule: Rule,
        frame: ConfigFrame,
        manifest: Manifest,
        normalizer: Normalizer,
        frame_key: str,
    ) -> RuleResult:
        """One rule evaluation that cannot kill the cycle.

        Any exception -- an injected fault from the ``rule.eval`` site,
        a raw OSError escaping a real filesystem, a bug in one
        evaluator -- degrades to an ERROR verdict with the traceback in
        ``detail``.  Partial, accounted results always beat losing the
        other thousand frames of the cycle.
        """
        try:
            if _CHAOS.armed:
                _CHAOS.fire(
                    "rule.eval", f"{frame_key}|{manifest.entity}/{rule.name}")
            return self._evaluate(rule, frame, manifest, normalizer)
        except Exception as exc:
            return _error_result(rule, manifest.entity, frame_key, exc)

    @staticmethod
    def _cancelled_result(manifest: Manifest, rule: Rule,
                          target: str) -> RuleResult:
        """A quarantined ERROR verdict for a deadline-cancelled rule.

        Volatile by construction: never persisted to the verdict store,
        so the next (on-budget) cycle re-evaluates for real.
        """
        _CHAOS.account.note_deadline_cancellation()
        result = RuleResult(
            rule=rule,
            entity=manifest.entity,
            target=target,
            verdict=Verdict.ERROR,
            outcome=Outcome.EVALUATION_ERROR,
            message=f"{rule.name}: cancelled: deadline exceeded",
        )
        result.volatile = True
        return result

    @staticmethod
    def _component_present(
        frame: ConfigFrame,
        manifest: Manifest,
        ruleset: RuleSet,
        normalizer: Normalizer,
    ) -> bool:
        """A component's rules only run where the component exists: some
        file under its search paths, or runtime state the pack's script
        rules consume.  (The production system scopes packs the same way
        -- an nginx pack must not flood a MySQL container with "not
        present" findings.)"""
        if manifest.entity in frame.runtime:
            return True
        if not manifest.config_search_paths:
            return True  # nothing to scope by; run everywhere
        if normalizer.files_in_search_paths(frame, manifest.config_search_paths):
            return True
        for rule in ruleset.enabled_rules():
            if isinstance(rule, ScriptRule):
                plugin, _key = rule.plugin_and_key()
                if plugin in frame.runtime:
                    return True
        return False

    @staticmethod
    def _record_intrinsic_deps(
        recorder: DependencyRecorder, rule: Rule, frame: ConfigFrame
    ) -> None:
        """Dependencies the evaluators read directly off the frame, not
        through the normalizer: path rules stat their path, script rules
        read one runtime namespace.  A malformed script spec records no
        deps -- its ERROR verdict is frame-independent and replays until
        the pack is edited (ruleset digest)."""
        if isinstance(rule, PathRule):
            recorder.record_filemeta(frame, rule.name)
        elif isinstance(rule, ScriptRule):
            try:
                plugin, _key = rule.plugin_and_key()
            except ReproError:
                return
            recorder.record_runtime(frame, plugin)

    def _evaluate(
        self,
        rule: Rule,
        frame: ConfigFrame,
        manifest: Manifest,
        normalizer: Normalizer,
    ) -> RuleResult:
        if isinstance(rule, TreeRule):
            return evaluate_tree(rule, frame, manifest, normalizer)
        if isinstance(rule, SchemaRule):
            return evaluate_schema(rule, frame, manifest, normalizer)
        if isinstance(rule, PathRule):
            return evaluate_path(rule, frame, manifest)
        if isinstance(rule, ScriptRule):
            return evaluate_script(rule, frame, manifest)
        raise EngineError(f"no evaluator for rule type {type(rule).__name__}")

    def _evaluate_composite(
        self,
        rule: CompositeRule,
        manifest: Manifest,
        context: _RunContext,
        target: str,
    ) -> RuleResult:
        missing = [
            entity
            for entity in sorted(referenced_entities(rule.expression))
            if entity not in context.placements
        ]
        if missing:
            return RuleResult(
                rule=rule,
                entity=manifest.entity,
                target=target,
                verdict=Verdict.NOT_APPLICABLE,
                outcome=Outcome.COMPOSITE,
                message=(
                    f"{rule.name}: referenced entities not in this run: "
                    f"{', '.join(missing)}"
                ),
            )
        try:
            outcome = evaluate_composite(rule.expression, context)
        except Exception as exc:
            # A composite expression reads across many frames; any one
            # bad lookup (injected fault, torn filesystem, expression
            # bug) degrades to an ERROR verdict instead of killing the
            # cycle's other results.
            return _error_result(rule, manifest.entity, target, exc)
        verdict = Verdict.COMPLIANT if outcome.passed else Verdict.NONCOMPLIANT
        message = (
            rule.matched_description
            if outcome.passed
            else rule.not_matched_description
        ) or rule.description or rule.name
        evidence = [
            Evidence(location=term, value="true" if ok else "false")
            for term, ok in outcome.term_results
        ]
        return RuleResult(
            rule=rule,
            entity=manifest.entity,
            target=target,
            verdict=verdict,
            outcome=Outcome.COMPOSITE,
            message=message,
            evidence=evidence,
            detail="; ".join(
                f"{term} -> {ok}" for term, ok in outcome.term_results
            ),
        )
