"""Incremental revalidation: dependency-indexed rule skipping.

The production deployment (paper §5) runs the validator as a resident
scan loop; between cycles almost nothing changes.  This module lets a
cycle prove, per (frame, entity, rule), that the inputs the rule read
last time are unchanged -- and replay the stored :class:`RuleResult`
verbatim instead of re-evaluating.

Three pieces cooperate:

* :class:`DependencyRecorder` -- a thread-local tape the normalizer and
  the evaluators write dependency keys onto while a rule runs.  Keys are
  ``(frame key, kind, arg)`` tuples; the kinds and digests live in
  :mod:`repro.crawler.fingerprint`.  Recording happens at normalizer
  *entry* (before any memo check), so a memo hit still records the read.
* :class:`VerdictStore` -- maps ``(frame key, entity, rule name)`` to the
  recorded dependency slice (with digests) plus the serialized result.
  A lookup replays only when every dependency's digest matches the
  current frame fingerprints and the entity's ruleset digest is
  unchanged.  Composite rules have their own entries gated additionally
  on the referenced per-entity verdict slice and placements.
* :func:`ruleset_digest` -- content hash of a manifest + its rules, so
  editing a rule pack invalidates exactly that entity's entries.

Replayed results are byte-identical to a fresh evaluation: the payload
keeps every field the renderers consume (verdict, outcome, message,
evidence, detail, target) and the ``rule`` object is re-bound to the
*current* rule, which the ruleset digest guarantees is equivalent.

The store is in-memory by default; :meth:`VerdictStore.save` /
:meth:`VerdictStore.load` persist it as JSON under a state directory so
separate CLI invocations (``--state-dir``) get cross-process
incrementality.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable

from repro.crawler.fingerprint import (
    FILE,
    FILEMETA,
    FrameFingerprint,
    LISTING,
    PACKAGES,
    RUNTIME,
    RUNTIME_KEYS,
    listing_arg,
    normalize_file_arg,
)
from repro.engine.provenance import ROUTE_REPLAYED, ProvenanceRecord
from repro.engine.results import Evidence, Outcome, RuleResult, Verdict

if TYPE_CHECKING:  # pragma: no cover
    from repro.crawler.frame import ConfigFrame
    from repro.cvl.manifest import Manifest
    from repro.cvl.model import Rule, RuleSet

#: On-disk schema version of ``verdicts.json``.
FORMAT_VERSION = 1

#: File name inside a ``--state-dir``.
STATE_FILE = "verdicts.json"


# ---- dependency recording ---------------------------------------------------


class DependencyRecorder:
    """Thread-local tape of the dependency keys a rule evaluation reads.

    The engine opens a :meth:`recording` scope around each fresh rule
    evaluation; the normalizer (and the composite value lookup) call the
    ``record_*`` methods unconditionally -- outside a scope they are
    no-ops, so the non-incremental path pays one attribute probe per
    hook.  Tapes are ordered dicts used as sets, keeping dependency
    order deterministic for the persisted form.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    @contextmanager
    def recording(self):
        tape, previous = self.begin()
        try:
            yield tape
        finally:
            self.end(previous)

    def begin(self) -> tuple[dict[tuple[str, str, str], None], dict | None]:
        """Open a tape; returns ``(tape, previous)`` for :meth:`end`.

        The engine uses this explicit pair instead of :meth:`recording`
        on the per-rule hot path -- a generator context manager costs
        more than the tape it manages.
        """
        previous = getattr(self._local, "tape", None)
        tape: dict[tuple[str, str, str], None] = {}
        self._local.tape = tape
        return tape, previous

    def end(self, previous: dict | None) -> None:
        self._local.tape = previous

    def _tape(self) -> dict | None:
        return getattr(self._local, "tape", None)

    def record_file(self, frame: "ConfigFrame", path: str) -> None:
        tape = self._tape()
        if tape is not None:
            tape[(frame.describe(), FILE, normalize_file_arg(path))] = None

    def record_filemeta(self, frame: "ConfigFrame", path: str) -> None:
        tape = self._tape()
        if tape is not None:
            tape[(frame.describe(), FILEMETA, normalize_file_arg(path))] = None

    def record_listing(
        self, frame: "ConfigFrame", search_paths: list[str]
    ) -> None:
        tape = self._tape()
        if tape is not None:
            tape[(frame.describe(), LISTING, listing_arg(search_paths))] = None

    def record_runtime(self, frame: "ConfigFrame", namespace: str) -> None:
        tape = self._tape()
        if tape is not None:
            tape[(frame.describe(), RUNTIME, namespace)] = None

    def record_runtime_keys(self, frame: "ConfigFrame") -> None:
        tape = self._tape()
        if tape is not None:
            tape[(frame.describe(), RUNTIME_KEYS, "")] = None

    def record_packages(self, frame: "ConfigFrame") -> None:
        tape = self._tape()
        if tape is not None:
            tape[(frame.describe(), PACKAGES, "")] = None


# ---- result (de)serialization ----------------------------------------------


def _result_to_payload(result: RuleResult) -> dict:
    payload = {
        "rule": result.rule.name,
        "entity": result.entity,
        "target": result.target,
        "verdict": result.verdict.value,
        "outcome": result.outcome.value,
        "message": result.message,
        "evidence": [
            {"file": e.file, "location": e.location, "value": e.value}
            for e in result.evidence
        ],
        "detail": result.detail,
    }
    if result.provenance is not None:
        payload["provenance"] = result.provenance.to_dict()
    return payload


def _result_from_payload(payload: dict, rule: "Rule") -> RuleResult:
    return RuleResult(
        rule=rule,
        entity=payload["entity"],
        target=payload["target"],
        verdict=Verdict(payload["verdict"]),
        outcome=Outcome(payload["outcome"]),
        message=payload["message"],
        evidence=[
            Evidence(
                file=e.get("file", ""),
                location=e.get("location", ""),
                value=e.get("value", ""),
            )
            for e in payload["evidence"]
        ],
        detail=payload["detail"],
        _provenance=ProvenanceRecord.from_dict(payload.get("provenance")),
    )


def _entry_has_provenance(entry) -> bool:
    """Whether a replay from ``entry`` could carry a provenance record."""
    if entry.cached is not None:
        return entry.cached.provenance is not None
    return isinstance(entry.payload, dict) and "provenance" in entry.payload


def _replay(entry, rule: "Rule", want_provenance: bool = False) -> RuleResult:
    """The entry's replayed result (rehydrated once, then shared).

    Results are immutable once built -- nothing downstream writes to a
    :class:`RuleResult` or its evidence -- so replay returns the same
    object every cycle instead of copying it.  The bound ``rule`` object
    may come from an earlier ruleset load; freshness checks have already
    proven it content-identical (ruleset digest) to the current one.  A
    benign race when two workers rehydrate concurrently just builds the
    same value twice.

    Provenance-carrying replays never mutate the shared result: the
    record (re-labelled ``route=replayed``, origin preserved) rides on a
    memoized *twin* built with :func:`dataclasses.replace`, and a run
    that does not want provenance from a record-carrying entry gets the
    symmetric stripped twin.  Callers gate ``want_provenance=True`` on
    :func:`_entry_has_provenance`.
    """
    cached = entry.cached
    if cached is None:
        cached = _result_from_payload(entry.payload, rule)
        entry.cached = cached
    if want_provenance:
        twin = entry.prov_twin
        if twin is None:
            twin = replace(
                cached,
                _provenance=cached.provenance.as_route(ROUTE_REPLAYED),
            )
            entry.prov_twin = twin
        return twin
    # Direct field read: the common no-record case must not pay the
    # property (which would also materialize a deferred record thunk).
    if cached._provenance is None:
        return cached
    twin = entry.plain_twin
    if twin is None:
        twin = replace(cached, _provenance=None)
        entry.plain_twin = twin
    return twin


def _entry_payload(entry) -> dict:
    """The entry's JSON payload, serialized on first need (persistence)."""
    if entry.payload is None:
        entry.payload = _result_to_payload(entry.cached)
    return entry.payload


# ---- ruleset digest ---------------------------------------------------------


def _rule_content_digest(rule) -> str:
    """Content hash of one rule, memoized on the rule object.

    The digest is recomputed every validation run (it keys both the
    verdict store and the plan cache), so the expensive part -- JSON
    serialization of the rule's ``raw`` mapping -- is cached per rule
    object.  Rule *content* is treated as immutable once loaded; the
    supported in-place toggle, :attr:`Rule.enabled`, deliberately stays
    out of this memo and is hashed live by :func:`ruleset_digest`.
    """
    memo = rule.__dict__.get("_content_digest")
    if memo is None:
        doc = {
            "type": rule.rule_type,
            "name": rule.name,
            "severity": rule.severity,
            "tags": list(rule.tags),
            "preferred": list(rule.preferred_value),
            "non_preferred": list(rule.non_preferred_value),
            "not_present_pass": rule.not_present_pass,
            "raw": rule.raw,
        }
        blob = json.dumps(doc, sort_keys=True, default=str)
        memo = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        rule.__dict__["_content_digest"] = memo
    return memo


def ruleset_digest(manifest: "Manifest", ruleset: "RuleSet") -> str:
    """Content hash of everything about a pack that can change a verdict.

    Editing a rule (or the manifest's search paths / lens / parser)
    changes this digest, which drops the entity's stored verdicts and
    recompiles the entity's rule plan.  The ``raw`` mapping carries
    every authored keyword, including ones a subclass adds later; the
    explicit fields guard programmatically built rules whose ``raw`` is
    empty.  Per-rule content hashes are memoized (see
    :func:`_rule_content_digest`); enablement is hashed live so toggling
    ``rule.enabled`` between runs is always observed.
    """
    doc = {
        "manifest": {
            "entity": manifest.entity,
            "search_paths": list(manifest.config_search_paths),
            "lens": manifest.lens,
            "schema_parser": manifest.schema_parser,
            "entity_kinds": sorted(manifest.entity_kinds or []),
        },
        "rules": [
            [_rule_content_digest(rule), rule.enabled]
            for rule in ruleset.rules
        ],
    }
    blob = json.dumps(doc, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---- stats ------------------------------------------------------------------


@dataclass
class StoreStats:
    """Point-in-time counters of one :class:`VerdictStore`."""

    entries: int = 0
    composites: int = 0
    presence: int = 0
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def render(self) -> str:
        return (
            f"verdict store: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.1%} hit rate), {self.entries} entries, "
            f"{self.composites} composites, "
            f"{self.invalidations} invalidated"
        )

    def to_dict(self) -> dict:
        return {
            "entries": self.entries,
            "composites": self.composites,
            "presence": self.presence,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "invalidations": self.invalidations,
        }


@dataclass
class IncrementalRunStats:
    """What incremental mode did during one validation run."""

    active: bool = True
    reason: str = ""                 # why incremental was disabled
    rules_replayed: int = 0
    rules_evaluated: int = 0
    composites_replayed: int = 0
    composites_evaluated: int = 0
    frames_clean: int = 0
    frames_dirty: int = 0
    store: StoreStats | None = field(default=None, repr=False)

    def render(self) -> str:
        if not self.active:
            return f"incremental: disabled ({self.reason})"
        total = self.rules_replayed + self.rules_evaluated
        composites = self.composites_replayed + self.composites_evaluated
        line = (
            f"incremental: {self.rules_replayed}/{total} rules replayed, "
            f"{self.composites_replayed}/{composites} composites replayed, "
            f"{self.frames_clean} clean / {self.frames_dirty} dirty frames"
        )
        if self.store is not None:
            line += f"\n{self.store.render()}"
        return line


# ---- the store --------------------------------------------------------------


@dataclass
class _Entry:
    """One stored per-entity verdict: dependency slice + payload.

    ``payload`` is the JSON form; ``cached`` is the live
    :class:`RuleResult` the entry was built from (or last rehydrated
    to), so steady-state replays skip both serialization directions.
    Either may be ``None``; :func:`_entry_payload` / :func:`_replay`
    materialize the missing side on demand.
    """

    deps: list[tuple[str, str, str, str]]   # (frame key, kind, arg, digest)
    payload: dict | None
    cached: RuleResult | None = field(default=None, repr=False, compare=False)
    #: Memoized replay twins (see :func:`_replay`): ``cached`` with the
    #: record re-labelled ``replayed`` / with the record stripped.
    prov_twin: RuleResult | None = field(default=None, repr=False,
                                         compare=False)
    plain_twin: RuleResult | None = field(default=None, repr=False,
                                          compare=False)


@dataclass
class _CompositeEntry:
    """One stored composite verdict.

    Replay additionally requires the run ``target`` (the ordered frame
    set), the referenced per-entity verdict slice, and the per-entity
    placement order to be unchanged -- composites read the merged run
    context, not just frame bytes.
    """

    deps: list[tuple[str, str, str, str]]
    payload: dict | None
    target: str
    pairs: list[tuple[str, str]]            # referenced (entity, config)
    verdicts: dict[tuple[str, str], bool | None]
    placements: dict[str, list[str]]        # entity -> ordered frame keys
    cached: RuleResult | None = field(default=None, repr=False, compare=False)
    prov_twin: RuleResult | None = field(default=None, repr=False,
                                         compare=False)
    plain_twin: RuleResult | None = field(default=None, repr=False,
                                          compare=False)


class VerdictStore:
    """Thread-safe store of per-rule verdicts keyed by dependency digests.

    Lookups (:meth:`fresh_result`) run on validator worker threads; the
    counters and mutation paths are lock-guarded.  The store survives
    across runs of one process, and :meth:`save`/:meth:`load` extend
    that across processes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[tuple[str, str, str], _Entry] = {}
        self._composites: dict[tuple[str, str], _CompositeEntry] = {}
        #: (frame key, entity) -> component-presence decision + its deps.
        self._presence: dict[tuple[str, str], _Entry] = {}
        self._ruleset_digests: dict[str, str] = {}
        #: frame key -> whole-frame digest as of the last cycle.
        self._frame_digests: dict[str, str] = {}
        self._hits = 0
        self._misses = 0
        self._invalidations = 0

    # ---- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries) + len(self._composites)

    def stats(self) -> StoreStats:
        with self._lock:
            return StoreStats(
                entries=len(self._entries),
                composites=len(self._composites),
                presence=len(self._presence),
                hits=self._hits,
                misses=self._misses,
                invalidations=self._invalidations,
            )

    def attach_to(self, registry) -> None:
        """Mirror the counters into a metrics registry at scrape time."""

        def collect() -> None:
            stats = self.stats()
            registry.counter(
                "repro_verdict_store_hits_total",
                "Verdict-store lookups satisfied by replay.",
            ).set(stats.hits)
            registry.counter(
                "repro_verdict_store_misses_total",
                "Verdict-store lookups that fell through to evaluation.",
            ).set(stats.misses)
            registry.counter(
                "repro_verdict_store_invalidations_total",
                "Stored verdicts dropped by ruleset-digest changes.",
            ).set(stats.invalidations)
            registry.gauge(
                "repro_verdict_store_entries",
                "Stored per-entity and composite verdicts.",
            ).set(stats.entries + stats.composites)

        registry.register_collector(f"verdict-store-{id(self)}", collect)

    def _hit(self) -> None:
        # Unlocked increment: ``+=`` on an int can drop a count under
        # racing workers, which is acceptable for a telemetry counter
        # and saves a lock round-trip per rule on the hot replay path.
        self._hits += 1

    def _miss(self) -> None:
        self._misses += 1

    # ---- invalidation ------------------------------------------------------

    def sync_rulesets(self, digests: dict[str, str]) -> None:
        """Drop every entry whose entity's pack content changed."""
        with self._lock:
            changed = {
                entity
                for entity, digest in digests.items()
                if self._ruleset_digests.get(entity) not in (None, digest)
            }
            if changed:
                for key in [k for k in self._entries if k[1] in changed]:
                    del self._entries[key]
                    self._invalidations += 1
                for key in [k for k in self._composites if k[0] in changed]:
                    del self._composites[key]
                    self._invalidations += 1
                # Presence consults the pack's script rules, so it is
                # ruleset-dependent too.
                for key in [k for k in self._presence if k[1] in changed]:
                    del self._presence[key]
            self._ruleset_digests.update(digests)

    def begin_cycle(self, frame_digests: dict[str, str]) -> frozenset[str]:
        """Record this cycle's whole-frame digests; return the clean set.

        A frame whose digest matches the previous cycle is *wholly*
        unchanged: every per-dependency digest check against it can be
        skipped (see :meth:`_deps_clean`).
        """
        with self._lock:
            clean = frozenset(
                key
                for key, digest in frame_digests.items()
                if self._frame_digests.get(key) == digest
            )
            self._frame_digests.update(frame_digests)
        return clean

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._composites.clear()
            self._presence.clear()
            self._frame_digests.clear()

    # ---- per-entity verdicts -----------------------------------------------

    def _deps_clean(
        self,
        deps: Iterable[tuple[str, str, str, str]],
        fingerprints: dict[str, FrameFingerprint],
        clean_frames: frozenset[str] = frozenset(),
    ) -> bool:
        for frame_key, kind, arg, digest in deps:
            if frame_key in clean_frames:
                continue  # whole-frame digest already proved it unchanged
            fingerprint = fingerprints.get(frame_key)
            if fingerprint is None:
                return False
            if fingerprint.digest((kind, arg)) != digest:
                return False
        return True

    def fresh_result(
        self,
        frame_key: str,
        entity: str,
        rule: "Rule",
        fingerprints: dict[str, FrameFingerprint],
        clean_frames: frozenset[str] = frozenset(),
        provenance: bool = False,
    ) -> RuleResult | None:
        """The stored result iff every recorded dependency is unchanged.

        A ``provenance``-wanting lookup additionally requires the entry
        to carry a stored record (entries written by provenance-off runs
        miss, forcing one fresh evaluation that stores the record).
        """
        entry = self._entries.get((frame_key, entity, rule.name))
        if entry is None or not self._deps_clean(entry.deps, fingerprints,
                                                 clean_frames):
            self._miss()
            return None
        if provenance and not _entry_has_provenance(entry):
            self._miss()
            return None
        self._hit()
        return _replay(entry, rule, want_provenance=provenance)

    def put(
        self,
        frame_key: str,
        entity: str,
        rule_name: str,
        tape: dict[tuple[str, str, str], None],
        fingerprints: dict[str, FrameFingerprint],
        result: RuleResult,
    ) -> None:
        deps = [
            (fk, kind, arg, fingerprints[fk].digest((kind, arg)))
            for (fk, kind, arg) in tape
        ]
        # Unlocked: dict assignment is atomic under the GIL and workers
        # never write the same (frame, entity, rule) key; invalidation
        # and persistence run outside the fan-out.
        self._entries[(frame_key, entity, rule_name)] = _Entry(
            deps=deps, payload=None, cached=result,
        )

    # ---- component presence ------------------------------------------------

    def fresh_presence(
        self,
        frame_key: str,
        entity: str,
        fingerprints: dict[str, FrameFingerprint],
        clean_frames: frozenset[str] = frozenset(),
    ) -> bool | None:
        """The stored is-this-component-here decision, if still valid.

        Presence is a function of the search-path listing and the set of
        runtime namespaces, both of which it records as deps; replaying
        it spares the clean path one filesystem walk per (frame, pack).
        """
        entry = self._presence.get((frame_key, entity))
        if entry is None or not self._deps_clean(entry.deps, fingerprints,
                                                 clean_frames):
            return None
        return bool(entry.payload["present"])

    def put_presence(
        self,
        frame_key: str,
        entity: str,
        tape: dict[tuple[str, str, str], None],
        fingerprints: dict[str, FrameFingerprint],
        present: bool,
    ) -> None:
        deps = [
            (fk, kind, arg, fingerprints[fk].digest((kind, arg)))
            for (fk, kind, arg) in tape
        ]
        # Unlocked for the same reason as :meth:`put`.
        self._presence[(frame_key, entity)] = _Entry(
            deps=deps, payload={"present": bool(present)},
        )

    # ---- composite verdicts ------------------------------------------------

    def fresh_composite(
        self,
        entity: str,
        rule: "Rule",
        *,
        target: str,
        context,
        fingerprints: dict[str, FrameFingerprint],
        recomputed: set[tuple[str, str]],
        clean_frames: frozenset[str] = frozenset(),
        provenance: bool = False,
    ) -> RuleResult | None:
        """Replay a composite iff nothing it aggregates moved.

        Clean means: same frame set (``target``), no referenced
        per-entity verdict was recomputed this run, the referenced
        verdict slice and placement order are identical, and every file
        or runtime value the expression's lookups read is unchanged.
        """
        entry = self._composites.get((entity, rule.name))
        if (
            entry is None
            or entry.target != target
            or any(pair in recomputed for pair in entry.pairs)
            or not self._deps_clean(entry.deps, fingerprints, clean_frames)
            or (provenance and not _entry_has_provenance(entry))
        ):
            self._miss()
            return None
        for pair in entry.pairs:
            if context.rule_verdict(*pair) != entry.verdicts.get(pair):
                self._miss()
                return None
            placed = [
                frame.describe()
                for frame, _manifest in context.placements.get(pair[0], [])
            ]
            if placed != entry.placements.get(pair[0], []):
                self._miss()
                return None
        self._hit()
        return _replay(entry, rule, want_provenance=provenance)

    def put_composite(
        self,
        entity: str,
        rule: "Rule",
        *,
        target: str,
        context,
        pairs: set[tuple[str, str]],
        tape: dict[tuple[str, str, str], None],
        fingerprints: dict[str, FrameFingerprint],
        result: RuleResult,
    ) -> None:
        ordered = sorted(pairs)
        deps = [
            (fk, kind, arg, fingerprints[fk].digest((kind, arg)))
            for (fk, kind, arg) in tape
            if fk in fingerprints
        ]
        entry = _CompositeEntry(
            deps=deps,
            payload=None,
            cached=result,
            target=target,
            pairs=ordered,
            verdicts={pair: context.rule_verdict(*pair) for pair in ordered},
            placements={
                pair_entity: [
                    frame.describe()
                    for frame, _m in context.placements.get(pair_entity, [])
                ]
                for pair_entity in {p[0] for p in ordered}
            },
        )
        with self._lock:
            self._composites[(entity, rule.name)] = entry

    # ---- process-shard slices ----------------------------------------------

    def export_slice(
        self, frame_keys: Iterable[str], *, include_counters: bool = False
    ) -> dict:
        """JSON-shaped document of this store's state for ``frame_keys``.

        The process executor ships one slice per shard so workers can
        replay unchanged verdicts exactly as the thread path would.
        Deliberately excluded:

        - **whole-frame digests** -- a worker must not take the
          clean-frame shortcut (the parent only ships frames it could
          not prove clean), so every replay in the worker verifies its
          per-dependency digests;
        - **composites** -- they aggregate the whole run and always
          evaluate in the parent.

        ``include_counters`` adds this store's hit/miss tallies; workers
        use it so the parent can absorb their lookup counts.
        """
        keys = frozenset(frame_keys)
        with self._lock:
            doc: dict = {
                "format": FORMAT_VERSION,
                "rulesets": dict(self._ruleset_digests),
                "presence": [
                    {
                        "frame": key[0],
                        "entity": key[1],
                        "deps": [list(dep) for dep in entry.deps],
                        "present": bool(entry.payload["present"]),
                    }
                    for key, entry in self._presence.items()
                    if key[0] in keys
                ],
                "entries": [
                    {
                        "frame": key[0],
                        "entity": key[1],
                        "rule": key[2],
                        "deps": [list(dep) for dep in entry.deps],
                        "payload": _entry_payload(entry),
                    }
                    for key, entry in self._entries.items()
                    if key[0] in keys
                ],
            }
            if include_counters:
                doc["counters"] = {
                    "hits": self._hits,
                    "misses": self._misses,
                }
        return doc

    @classmethod
    def import_slice(cls, doc: dict) -> "VerdictStore":
        """Build a shard-local store from :meth:`export_slice` output.

        Malformed documents yield an empty store -- the shard then just
        runs a full evaluation, which is correct (only slower).
        """
        store = cls()
        if not isinstance(doc, dict) or doc.get("format") != FORMAT_VERSION:
            return store
        try:
            store._ruleset_digests = dict(doc.get("rulesets", {}))
            for raw in doc.get("presence", []):
                store._presence[(raw["frame"], raw["entity"])] = _Entry(
                    deps=[tuple(dep) for dep in raw["deps"]],
                    payload={"present": bool(raw["present"])},
                )
            for raw in doc.get("entries", []):
                key = (raw["frame"], raw["entity"], raw["rule"])
                store._entries[key] = _Entry(
                    deps=[tuple(dep) for dep in raw["deps"]],
                    payload=raw["payload"],
                )
        except (KeyError, TypeError, ValueError):
            return cls()
        return store

    def absorb_slice(self, doc: dict) -> None:
        """Merge a worker's exported slice back into this store.

        Entries and presence decisions replace this store's rows for the
        same keys (the worker's row is strictly newer -- it either
        replayed the parent's entry or re-evaluated the rule this
        cycle); worker counter deltas fold into the hit/miss tallies.
        Malformed slices are dropped -- the affected frames simply
        evaluate fresh next cycle.
        """
        if not isinstance(doc, dict) or doc.get("format") != FORMAT_VERSION:
            return
        try:
            presence = [
                ((raw["frame"], raw["entity"]),
                 _Entry(deps=[tuple(dep) for dep in raw["deps"]],
                        payload={"present": bool(raw["present"])}))
                for raw in doc.get("presence", [])
            ]
            entries = [
                ((raw["frame"], raw["entity"], raw["rule"]),
                 _Entry(deps=[tuple(dep) for dep in raw["deps"]],
                        payload=raw["payload"]))
                for raw in doc.get("entries", [])
            ]
        except (KeyError, TypeError, ValueError):
            return
        counters = doc.get("counters") or {}
        with self._lock:
            self._presence.update(presence)
            self._entries.update(entries)
            self._hits += int(counters.get("hits", 0))
            self._misses += int(counters.get("misses", 0))

    # ---- persistence -------------------------------------------------------

    def save(self, state_dir: str) -> str:
        """Write the store as JSON under ``state_dir`` (atomic rename)."""
        os.makedirs(state_dir, exist_ok=True)
        with self._lock:
            doc = {
                "format": FORMAT_VERSION,
                "rulesets": dict(self._ruleset_digests),
                "frames": dict(self._frame_digests),
                "presence": [
                    {
                        "frame": key[0],
                        "entity": key[1],
                        "deps": [list(dep) for dep in entry.deps],
                        "present": bool(entry.payload["present"]),
                    }
                    for key, entry in self._presence.items()
                ],
                "entries": [
                    {
                        "frame": key[0],
                        "entity": key[1],
                        "rule": key[2],
                        "deps": [list(dep) for dep in entry.deps],
                        "payload": _entry_payload(entry),
                    }
                    for key, entry in self._entries.items()
                ],
                "composites": [
                    {
                        "entity": key[0],
                        "rule": key[1],
                        "deps": [list(dep) for dep in entry.deps],
                        "payload": _entry_payload(entry),
                        "target": entry.target,
                        "pairs": [list(pair) for pair in entry.pairs],
                        "verdicts": [
                            [pair[0], pair[1], verdict]
                            for pair, verdict in entry.verdicts.items()
                        ],
                        "placements": entry.placements,
                    }
                    for key, entry in self._composites.items()
                ],
            }
        path = os.path.join(state_dir, STATE_FILE)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, separators=(",", ":"))
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, state_dir: str) -> "VerdictStore":
        """Load a persisted store; corrupt or missing state yields an
        empty store (the next cycle is simply a full one)."""
        store = cls()
        path = os.path.join(state_dir, STATE_FILE)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except OSError:
            return store
        except ValueError as error:
            # Corrupt JSON: quarantine the file (counted, kept on disk
            # for the postmortem) exactly like a corrupt sqlite store,
            # instead of silently overwriting it on the next save.
            from repro.chaos.quarantine import quarantine_database

            quarantine_database(path, reason=f"verdict store: {error}")
            return store
        if not isinstance(doc, dict) or doc.get("format") != FORMAT_VERSION:
            return store
        try:
            store._ruleset_digests = dict(doc.get("rulesets", {}))
            store._frame_digests = {
                str(key): str(digest)
                for key, digest in doc.get("frames", {}).items()
            }
            for raw in doc.get("presence", []):
                store._presence[(raw["frame"], raw["entity"])] = _Entry(
                    deps=[tuple(dep) for dep in raw["deps"]],
                    payload={"present": bool(raw["present"])},
                )
            for raw in doc.get("entries", []):
                key = (raw["frame"], raw["entity"], raw["rule"])
                store._entries[key] = _Entry(
                    deps=[tuple(dep) for dep in raw["deps"]],
                    payload=raw["payload"],
                )
            for raw in doc.get("composites", []):
                store._composites[(raw["entity"], raw["rule"])] = (
                    _CompositeEntry(
                        deps=[tuple(dep) for dep in raw["deps"]],
                        payload=raw["payload"],
                        target=raw["target"],
                        pairs=[tuple(pair) for pair in raw["pairs"]],
                        verdicts={
                            (e, c): verdict
                            for e, c, verdict in raw["verdicts"]
                        },
                        placements={
                            entity: list(keys)
                            for entity, keys in raw["placements"].items()
                        },
                    )
                )
        except (KeyError, TypeError, ValueError) as error:
            from repro.chaos.quarantine import quarantine_database

            quarantine_database(path, reason=f"verdict store: {error}")
            return cls()   # partially-valid state: start clean
        return store
