"""Compiled rule plans: a ruleset query planner with fused evaluation.

The per-rule engine (:mod:`repro.engine.evaluators`) re-derives the same
intermediate work for every rule of a pack: it parses the rule's path
expressions, re-filters the frame's file listing, and walks the full
config tree once per rule -- even when forty sshd rules target the same
``sshd_config``.  This module compiles a :class:`~repro.cvl.model.RuleSet`
once into a :class:`RulePlan`:

* every tree rule's ``config_path`` alternatives and ``name`` expression
  are parsed at compile time; regex value checks are pre-warmed into the
  match-spec compile cache;
* tree rules are grouped into **fused units** by
  ``(file_context, lens)``: each unit resolves its candidate files once
  (via the normalizer's :class:`~repro.engine.normalizer.FileTargetIndex`),
  normalizes each file once, and serves every member's ``config_path``
  scopes from a **single traversal** driven by a :class:`SegmentTrie`
  that steps all compiled expressions simultaneously;
* plans are cached process-wide, keyed by the same ruleset digest the
  incremental verdict store uses -- scan cycles and validator instances
  sharing a pack share one compiled plan.

Fused evaluation is byte-identical to the per-rule path: scope assembly
mirrors ``evaluators._scopes`` (per-alternative dedup, ordered union),
name matching reuses :func:`repro.augtree.path.step_segment` semantics,
and verdict assembly goes through the shared
:func:`repro.engine.evaluators.finalize_tree_rule` tail.  Rules the
planner cannot prove equivalent (unparsable expressions, duplicate rule
names, candidate-file discovery errors) fall back to the per-rule
evaluator -- correctness never depends on fusion.
"""

from __future__ import annotations

import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.chaos.fabric import absorbed as _chaos_absorbed
from repro.errors import (
    CVLKeywordError,
    FileNotFoundInFrame,
    LensError,
    PathExpressionError,
    ReproError,
)
from repro.augtree.path import (
    Segment,
    apply_predicates,
    parse_path,
    step_segment,
)
from repro.augtree.tree import ConfigNode
from repro.crawler.fingerprint import FILE, LISTING, listing_arg, normalize_file_arg
from repro.cvl.match import _compile as _compile_value_pattern
from repro.cvl.model import CompositeRule, TreeRule
from repro.engine.evaluators import finalize_tree_rule
from repro.engine.results import Evidence

#: A member's ``config_path`` alternative that means "the tree root"
#: (the empty expression) -- no trie slot is allocated for it.
_ROOT_SLOT = -1


# ---- segment trie -----------------------------------------------------------


class _TrieNode:
    __slots__ = ("children", "slots", "members")

    def __init__(self) -> None:
        self.children: dict[Segment, "_TrieNode"] = {}
        #: Slot ids whose expression terminates at this node.
        self.slots: list[int] = []
        #: Member indexes with any terminal at or below this node
        #: (tag-filtered runs prune subtrees no active member needs).
        self.members: set[int] = set()


class SegmentTrie:
    """Steps many compiled path expressions through a tree at once.

    Expressions are inserted segment-by-segment; shared prefixes share
    trie nodes, so ``http/server/listen`` and ``http/server/ssl_protocols``
    step the ``http/server`` frontier exactly once.  Matching reuses
    :func:`repro.augtree.path.step_segment`, so each slot's result is
    identical to evaluating its :class:`PathExpression` alone.
    """

    def __init__(self) -> None:
        self.root = _TrieNode()
        self._slots = 0

    def insert(self, segments: tuple[Segment, ...], member: int) -> int:
        """Register one expression for ``member``; returns its slot id.

        ``segments`` must be non-empty (the empty expression matches the
        root and never enters the trie).
        """
        if not segments:
            raise ValueError("empty expressions do not take trie slots")
        slot = self._slots
        self._slots += 1
        node = self.root
        node.members.add(member)
        for segment in segments:
            node = node.children.setdefault(segment, _TrieNode())
            node.members.add(member)
        node.slots.append(slot)
        return slot

    def match(
        self, root: ConfigNode, active: set[int] | None = None
    ) -> dict[int, list[ConfigNode]]:
        """Every registered expression's matches under ``root``.

        Returns slot id -> matched nodes (document order, identity
        deduped, exactly as ``PathExpression.match``); slots with no
        match are absent.  ``active`` restricts the traversal to
        subtrees some listed member still needs.
        """
        results: dict[int, list[ConfigNode]] = {}
        stack: list[tuple[_TrieNode, list[ConfigNode]]] = [(self.root, [root])]
        while stack:
            node, frontier = stack.pop()
            for segment, child in node.children.items():
                if active is not None and active.isdisjoint(child.members):
                    continue
                stepped = step_segment(frontier, segment)
                if not stepped:
                    continue
                for slot in child.slots:
                    # Fresh per-slot list: final identity dedup mirrors
                    # PathExpression.match.
                    results[slot] = list(dict.fromkeys(stepped))
                if child.children:
                    stack.append((child, stepped))
        return results


# ---- compiled members and fused units ---------------------------------------


class _PlanMember:
    """One tree rule compiled into its fused unit."""

    __slots__ = ("rule", "index", "alt_slots", "name_expr", "name_fast")

    def __init__(self, rule: TreeRule, index: int):
        self.rule = rule
        self.index = index
        #: Per ``config_path`` alternative, in authored order: a trie
        #: slot id or ``_ROOT_SLOT`` for the empty alternative.
        self.alt_slots: list[int] = []
        self.name_expr = None
        #: ``(label, predicates)`` when the name is a single plain-label
        #: segment -- resolved with one label-index probe per scope.
        self.name_fast: tuple[str, tuple] | None = None

    def scopes(self, root: ConfigNode, slot_nodes: dict[int, list[ConfigNode]]):
        """The member's scope set, mirroring ``evaluators._scopes``."""
        scopes: dict[ConfigNode, None] = {}
        for slot in self.alt_slots:
            nodes = (root,) if slot == _ROOT_SLOT else slot_nodes.get(slot, ())
            scopes.update(dict.fromkeys(nodes))
        return scopes

    def match_name(self, scope: ConfigNode) -> list[ConfigNode]:
        fast = self.name_fast
        if fast is not None:
            label, predicates = fast
            candidates = scope.children_named(label)
            if predicates:
                return apply_predicates(candidates, predicates)
            return candidates
        return self.name_expr.match(scope)


class _FusedUnit:
    """Tree rules sharing ``(file_context, lens)``: one candidate-file
    resolution, one parse, one trie traversal per matched file."""

    __slots__ = ("file_context", "lens", "members", "trie")

    def __init__(self, file_context: list[str], lens: str | None):
        self.file_context = file_context
        self.lens = lens
        self.members: list[_PlanMember] = []
        self.trie = SegmentTrie()

    def try_add(self, rule: TreeRule) -> "_PlanMember | None":
        """Compile ``rule`` into this unit; None when it must fall back
        to the per-rule evaluator (unparsable expressions -- which the
        per-rule path turns into ERROR results or propagates, with
        tracebacks fusion could not reproduce)."""
        member = _PlanMember(rule, index=len(self.members))
        try:
            name_expr = parse_path(rule.name)
            alternatives: list[tuple[Segment, ...] | None] = []
            for alternative in rule.config_path or [""]:
                alternative = alternative.strip()
                if not alternative:
                    alternatives.append(None)
                else:
                    alternatives.append(parse_path(alternative).segments)
        except PathExpressionError:
            return None
        member.name_expr = name_expr
        segments = name_expr.segments
        if len(segments) == 1 and segments[0].name not in ("*", "**"):
            member.name_fast = (segments[0].name, segments[0].predicates)
        # Insert only after every expression parsed: a partially
        # inserted member would leak its index into trie pruning sets.
        for parsed in alternatives:
            if parsed is None:
                member.alt_slots.append(_ROOT_SLOT)
            else:
                member.alt_slots.append(self.trie.insert(parsed, member.index))
        self.members.append(member)
        return member


def _warm_value_patterns(rule) -> None:
    """Pre-compile regex value checks into the match-spec LRU cache.

    Bad patterns are swallowed: the per-rule engine only raises when a
    found value actually reaches the matcher, and compiling a plan must
    not change that timing.
    """
    flags = re.IGNORECASE if getattr(rule, "case_insensitive", False) else 0
    for spec, values in (
        (rule.preferred_match, rule.preferred_value),
        (rule.non_preferred_match, rule.non_preferred_value),
    ):
        if spec.mode != "regex":
            continue
        for value in values:
            try:
                _compile_value_pattern(value, flags)
            except CVLKeywordError:
                pass


# ---- the plan ---------------------------------------------------------------


class RulePlan:
    """A ruleset compiled for fused evaluation (immutable once built).

    Read-only after compilation, so one plan serves every frame and
    every worker thread of every scan cycle that shares the digest.
    """

    def __init__(self, manifest, ruleset, digest: str):
        self.digest = digest
        self.entity = manifest.entity
        #: Snapshot of the enabled rules in pack order -- the engine's
        #: planned path iterates this instead of re-filtering the
        #: (mutable) ruleset on every frame.
        self.rules = list(ruleset.enabled_rules())
        self.units: list[_FusedUnit] = []
        self._members: dict[str, tuple[_FusedUnit, _PlanMember]] = {}
        fallback: set[str] = set()
        #: Duplicate rule names would alias results in the planned
        #: assembly; such packs run entirely unfused.
        names = [r.name for r in self.rules if not isinstance(r, CompositeRule)]
        self.usable = len(names) == len(set(names))
        if not self.usable:
            self.fallback_names = frozenset()
            return
        units: "OrderedDict[tuple, _FusedUnit]" = OrderedDict()
        for rule in self.rules:
            if not isinstance(rule, TreeRule):
                continue
            _warm_value_patterns(rule)
            lens = rule.lens or manifest.lens
            key = (tuple(rule.file_context), lens)
            unit = units.get(key)
            if unit is None:
                unit = units[key] = _FusedUnit(list(rule.file_context), lens)
            member = unit.try_add(rule)
            if member is None:
                fallback.add(rule.name)
            else:
                self._members[rule.name] = (unit, member)
        self.units = [unit for unit in units.values() if unit.members]
        self.fallback_names = frozenset(fallback)

    def is_fused(self, rule) -> bool:
        return rule.name in self._members

    @property
    def fused_rule_count(self) -> int:
        return len(self._members)

    def evaluate_fused(
        self,
        frame,
        manifest,
        normalizer,
        pending: set[str],
        *,
        frame_key: str | None = None,
        stats: "PlanRunStats | None" = None,
    ):
        """Evaluate every pending fused rule over ``frame``.

        Returns ``(outputs, fallback)``: ``outputs`` is a list of
        ``(rule, result, tape, duration_s, started_s)`` tuples (``tape``
        is the synthesized dependency tape when ``frame_key`` is given,
        else None; the unit's wall time is split evenly across its
        evaluated members), and ``fallback`` names rules that must be
        re-run through the per-rule evaluator (candidate-file discovery
        raised, and the ERROR result must carry that path's traceback).
        """
        outputs = []
        fallback: list[str] = []
        entity = manifest.entity
        target = frame.describe()
        search_paths = manifest.config_search_paths
        for unit in self.units:
            active = [m for m in unit.members if m.rule.name in pending]
            if not active:
                continue
            started = time.perf_counter()
            try:
                files = normalizer.candidate_files(
                    frame, search_paths, unit.file_context
                )
            except ReproError:
                fallback.extend(member.rule.name for member in active)
                continue
            tape = None
            if frame_key is not None:
                # Exactly what the recorder hooks tape on the per-rule
                # path: the listing read, then each file read in order
                # (parse failures included -- the read still happened).
                tape = {(frame_key, LISTING, listing_arg(search_paths)): None}
            evidence: dict[int, list[Evidence]] = {
                member.index: [] for member in active
            }
            dependency_ok = {
                member.index: not member.rule.require_other_configs
                for member in active
            }
            parse_errors: list[str] = []
            volatile = False
            active_set = {member.index for member in active}
            parsed_files = 0
            for path in files:
                if tape is not None:
                    tape[(frame_key, FILE, normalize_file_arg(path))] = None
                try:
                    tree = normalizer.tree_for(frame, path, unit.lens)
                except (LensError, FileNotFoundInFrame) as exc:
                    if _chaos_absorbed(exc):
                        volatile = True
                    parse_errors.append(str(exc))
                    continue
                parsed_files += 1
                root = tree.root
                slot_nodes = unit.trie.match(root, active_set)
                labels_present: set[str] | None = None
                for member in active:
                    member_evidence = evidence[member.index]
                    found_here = False
                    for scope in member.scopes(root, slot_nodes):
                        for node in member.match_name(scope):
                            found_here = True
                            member_evidence.append(
                                Evidence(
                                    file=path,
                                    location=node.path(),
                                    value=node.value
                                    if node.value is not None
                                    else "",
                                    span=node.span,
                                )
                            )
                    requires = member.rule.require_other_configs
                    if found_here and requires:
                        if labels_present is None:
                            # One shared walk per file, not one per rule.
                            labels_present = {n.label for n in root.walk()}
                        if all(req in labels_present for req in requires):
                            dependency_ok[member.index] = True
            duration = time.perf_counter() - started
            share = duration / len(active)
            for member in active:
                result = finalize_tree_rule(
                    member.rule, entity, target,
                    evidence=evidence[member.index],
                    parse_errors=parse_errors,
                    files=files,
                    dependency_ok=dependency_ok[member.index],
                )
                if volatile:
                    result.volatile = True
                outputs.append((member.rule, result, tape, share, started))
            if stats is not None:
                stats.units_evaluated += 1
                stats.rules_fused += len(active)
                stats.files_traversed += parsed_files
                stats.traversals_saved += parsed_files * (len(active) - 1)
        return outputs, fallback


# ---- run statistics ---------------------------------------------------------


@dataclass
class PlanCacheStats:
    """Point-in-time counters of the process-wide plan cache."""

    compiles: int = 0
    hits: int = 0
    evictions: int = 0
    entries: int = 0

    def to_dict(self) -> dict:
        return {
            "compiles": self.compiles,
            "hits": self.hits,
            "evictions": self.evictions,
            "entries": self.entries,
        }

    def render(self) -> str:
        return (
            f"plan cache: {self.compiles} compiled, {self.hits} hits, "
            f"{self.entries} resident"
        )


@dataclass
class PlanRunStats:
    """What the planner did during one validation run."""

    rules_fused: int = 0        # fresh evaluations served by fused units
    rules_direct: int = 0       # fresh evaluations via the per-rule path
    rules_fallback: int = 0     # planned rules that fell back per-rule
    units_evaluated: int = 0
    files_traversed: int = 0    # files parsed + traversed once by units
    traversals_saved: int = 0   # repeat per-rule traversals avoided
    cache: PlanCacheStats | None = field(default=None, repr=False)

    @property
    def fusion_ratio(self) -> float:
        total = self.rules_fused + self.rules_direct + self.rules_fallback
        return self.rules_fused / total if total else 0.0

    def merge(self, other: "PlanRunStats") -> None:
        self.rules_fused += other.rules_fused
        self.rules_direct += other.rules_direct
        self.rules_fallback += other.rules_fallback
        self.units_evaluated += other.units_evaluated
        self.files_traversed += other.files_traversed
        self.traversals_saved += other.traversals_saved

    def render(self) -> str:
        line = (
            f"rule plans: {self.rules_fused} rules fused in "
            f"{self.units_evaluated} units "
            f"({self.fusion_ratio:.0%} of fresh evaluations), "
            f"{self.rules_direct} direct, {self.rules_fallback} fallback; "
            f"{self.files_traversed} files traversed once, "
            f"{self.traversals_saved} repeat traversals avoided"
        )
        if self.cache is not None:
            line += f"\n{self.cache.render()}"
        return line

    def to_dict(self) -> dict:
        return {
            "rules_fused": self.rules_fused,
            "rules_direct": self.rules_direct,
            "rules_fallback": self.rules_fallback,
            "units_evaluated": self.units_evaluated,
            "files_traversed": self.files_traversed,
            "traversals_saved": self.traversals_saved,
            "fusion_ratio": round(self.fusion_ratio, 4),
            "cache": self.cache.to_dict() if self.cache else None,
        }


# ---- process-wide plan cache ------------------------------------------------

#: Far above any realistic pack count; bounds a pathological caller that
#: generates rulesets in a loop.
_MAX_CACHED_PLANS = 256

_cache_lock = threading.Lock()
_cache: "OrderedDict[str, RulePlan]" = OrderedDict()
_compiles = 0
_hits = 0
_evictions = 0


def plan_for(manifest, ruleset, digest: str) -> RulePlan:
    """The compiled plan for ``(manifest, ruleset)``, cached by digest.

    The digest is :func:`repro.engine.incremental.ruleset_digest` -- the
    same key the verdict store invalidates on, so "content changed"
    means the same thing to both subsystems.  A cache hit may return a
    plan compiled from a different-but-content-identical ruleset object;
    results bind those equivalent rule objects.
    """
    global _compiles, _hits, _evictions
    with _cache_lock:
        plan = _cache.get(digest)
        if plan is not None:
            _cache.move_to_end(digest)
            _hits += 1
            return plan
    # Compile outside the lock; a racing duplicate compile is benign
    # (first store wins below).
    plan = RulePlan(manifest, ruleset, digest)
    with _cache_lock:
        _compiles += 1
        existing = _cache.get(digest)
        if existing is not None:
            return existing
        _cache[digest] = plan
        while len(_cache) > _MAX_CACHED_PLANS:
            _cache.popitem(last=False)
            _evictions += 1
    return plan


def plan_cache_stats() -> PlanCacheStats:
    with _cache_lock:
        return PlanCacheStats(
            compiles=_compiles,
            hits=_hits,
            evictions=_evictions,
            entries=len(_cache),
        )


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the counters (test isolation)."""
    global _compiles, _hits, _evictions
    with _cache_lock:
        _cache.clear()
        _compiles = _hits = _evictions = 0


def attach_plan_metrics(registry) -> None:
    """Mirror the plan-cache counters into a metrics registry at scrape
    time (same pull-style pattern as the parse cache)."""

    def collect() -> None:
        stats = plan_cache_stats()
        registry.counter(
            "repro_plan_compiles_total",
            "Rule plans compiled (plan-cache misses).",
        ).set(stats.compiles)
        registry.counter(
            "repro_plan_cache_hits_total",
            "Plan-cache lookups served by an already compiled plan.",
        ).set(stats.hits)
        registry.gauge(
            "repro_plan_cache_entries",
            "Compiled rule plans resident in the process-wide cache.",
        ).set(stats.entries)

    registry.register_collector("rule-plan-cache", collect)
