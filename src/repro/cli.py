"""Command-line interface.

``configvalidator`` (or ``python -m repro``) drives the same pipeline the
paper's production deployment runs:

* ``validate`` -- scan a directory tree (an unpacked rootfs / chroot)
  with the shipped rule packs, or with a custom manifest;
* ``coverage`` -- print the Table 1-style target/rule inventory;
* ``rules``    -- list the rules of one target, with tags;
* ``dump``     -- parse one config file with a lens and print the tree
  (handy when writing new rules);
* ``demo``     -- validate a synthetic host / fleet / cloud without
  touching the real filesystem;
* ``profile``  -- scan with telemetry on and rank the hottest /
  most-erroring rules and lenses;
* ``monitor``  -- run scan cycles on an interval with durable verdict
  history, a live HTTP endpoint, and a health event stream;
* ``history`` / ``flaps`` -- offline views over a monitor's history
  store (cycle table, per-entity trends, flapping rules).

Scanning commands share the telemetry flags: ``--trace-out`` (Chrome
``trace_event`` spans for chrome://tracing / Perfetto), ``--metrics-out``
(Prometheus text exposition), ``--metrics-port`` (threaded scrape
endpoint served for the duration of the run; ``--metrics-oneshot``
restores the block-for-one-scrape behavior), and ``--log-level`` /
``--log-json`` (structured logs on stderr).  Reports on stdout are
byte-identical with telemetry on or off.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.augtree.lenses import default_registry, lens_for_file
from repro.crawler import (
    ContainerEntity,
    Crawler,
    DockerImageEntity,
    HostEntity,
)
from repro.engine import render_json, render_text
from repro.fs import RealFilesystem
from repro.rules import (
    EXTENSION_TARGETS,
    TABLE1_TARGETS,
    inventory,
    load_builtin_validator,
)
from repro.workloads import FleetSpec, build_cloud_project, build_fleet, ubuntu_host_entity


def _cmd_validate(args: argparse.Namespace) -> int:
    telemetry = _telemetry_from_args(args)
    store, state_dir = _verdict_store_from_args(args)
    if args.rules_dir:
        from repro.rules.repository import load_validator_from_directory

        validator = load_validator_from_directory(
            args.rules_dir, cache_size=args.cache_size, workers=args.workers,
            telemetry=telemetry, verdict_store=store,
            use_plans=not args.no_plan,
            provenance=args.provenance,
            **_executor_kwargs_from_args(args),
        )
        if args.targets:
            wanted = set(args.targets.split(","))
            for manifest in validator.manifests():
                manifest.enabled = manifest.entity in wanted
    else:
        validator = load_builtin_validator(
            only=args.targets.split(",") if args.targets else None,
            cache_size=args.cache_size,
            workers=args.workers,
            telemetry=telemetry,
            verdict_store=store,
            use_plans=not args.no_plan,
            provenance=args.provenance,
            **_executor_kwargs_from_args(args),
        )
    timings = _make_timings(args)
    server = _start_metrics_server(args, telemetry)
    entity = HostEntity(args.name, RealFilesystem(args.root))
    report = validator.validate_entity(
        entity, tags=args.tags.split(",") if args.tags else None,
        timings=timings,
    )
    _finish_incremental(report, store, state_dir)
    _print_stage_timings(args, timings, validator)
    _print_plan_stats(args, report)
    _print_exec_stats(args, report)
    _print_degradation(args, report)
    if args.json:
        print(render_json(report))
    elif args.junit:
        from repro.engine.report import render_junit

        print(render_junit(report), end="")
    else:
        print(render_text(report, verbose=args.verbose,
                          only_failures=args.only_failures))
    # Emit telemetry before closing: the artifact-store gauges are
    # pull-style and scrape the live sqlite connection.
    _emit_telemetry(args, telemetry, server)
    validator.close()
    if args.fail_on:
        from repro.engine.batch import severity_rank

        threshold = severity_rank(args.fail_on)
        blocking = [
            result
            for result in report.failed()
            if severity_rank(result.rule.severity) >= threshold
        ]
        return 1 if blocking or report.errors() else 0
    return 0 if report.compliant else 1


def _verdict_store_from_args(args: argparse.Namespace):
    """(store, state_dir) from the incremental flags; (None, "") = full.

    ``--state-dir`` implies incremental mode and loads the persisted
    store; bare ``--incremental`` uses an in-memory store (useful inside
    one long-running process); ``--no-incremental`` wins over both.
    """
    if getattr(args, "no_incremental", False):
        return None, ""
    state_dir = getattr(args, "state_dir", "")
    if state_dir:
        from repro.engine.incremental import VerdictStore

        return VerdictStore.load(state_dir), state_dir
    if getattr(args, "incremental", False):
        from repro.engine.incremental import VerdictStore

        return VerdictStore(), ""
    return None, ""


def _finish_incremental(report, store, state_dir: str) -> None:
    """Persist the verdict store and print replay stats on stderr."""
    if store is None:
        return
    if state_dir:
        path = store.save(state_dir)
        print(f"verdict store saved to {path}", file=sys.stderr)
    stats = getattr(report, "incremental", None)
    if stats is not None:
        print(stats.render(), file=sys.stderr)


def _executor_kwargs_from_args(args: argparse.Namespace) -> dict:
    """Validator kwargs for the --executor/--shard-size/--artifact-store
    flags (empty dict when every flag is at its default)."""
    kwargs: dict = {}
    executor = getattr(args, "executor", "thread")
    if executor != "thread":
        kwargs["executor"] = executor
    shard_size = getattr(args, "shard_size", None)
    if shard_size is not None:
        kwargs["shard_size"] = shard_size
    raw = getattr(args, "artifact_store", "")
    if raw == "auto":
        state_dir = getattr(args, "state_dir", "")
        if not state_dir:
            raise SystemExit(
                "--artifact-store without a path requires --state-dir "
                "(or pass an explicit sqlite path)"
            )
        from repro.engine.artifact_store import store_path_for

        kwargs["artifact_store"] = str(store_path_for(state_dir))
    elif raw:
        kwargs["artifact_store"] = raw
    deadline = getattr(args, "deadline", None)
    if deadline is not None:
        kwargs["deadline_s"] = deadline
    frame_deadline = getattr(args, "frame_deadline", None)
    if frame_deadline is not None:
        kwargs["frame_deadline_s"] = frame_deadline
    _arm_chaos_from_args(args)
    return kwargs


def _arm_chaos_from_args(args: argparse.Namespace) -> None:
    """Arm the process-wide fault fabric when --chaos-plan was given.

    Arming exports the plan to the environment too, so worker processes
    spawned later inherit it (:func:`repro.chaos.fabric.arm_from_env`).
    """
    plan_ref = getattr(args, "chaos_plan", "")
    if not plan_ref:
        return
    from repro.chaos.fabric import ChaosPlanError, arm_plan
    from repro.chaos.plans import resolve_plan

    try:
        arm_plan(resolve_plan(plan_ref))
    except ChaosPlanError as exc:
        raise SystemExit(str(exc))


def _make_timings(args: argparse.Namespace):
    if not getattr(args, "stage_timings", False):
        return None
    from repro.engine.stages import StageTimings

    return StageTimings()


def _telemetry_from_args(args: argparse.Namespace, *, force: bool = False):
    """Configure logging and build a Telemetry bundle when requested.

    Returns None (meaning "use the default disabled bundle") unless the
    command asked for an exporter, keeping the zero-flag path on the
    no-op collectors.
    """
    from repro.telemetry import Telemetry, configure_logging

    configure_logging(
        getattr(args, "log_level", "warning"),
        json_output=getattr(args, "log_json", False),
    )
    wanted = force or bool(
        getattr(args, "trace_out", "")
        or getattr(args, "metrics_out", "")
        or getattr(args, "metrics_port", None) is not None
    )
    return Telemetry() if wanted else None


def _start_metrics_server(args: argparse.Namespace, telemetry):
    """Start the threaded ``/metrics`` endpoint for the run.

    Called right after the telemetry bundle exists, so the endpoint is
    scrapeable *during* the scan, not just after it.  Returns None when
    no port was requested or ``--metrics-oneshot`` asked for the legacy
    single-scrape-at-exit behavior (handled by :func:`_emit_telemetry`).
    """
    if telemetry is None or not telemetry.enabled:
        return None
    port = getattr(args, "metrics_port", None)
    if port is None or getattr(args, "metrics_oneshot", False):
        return None
    from repro.telemetry.export import MetricsServer

    server = MetricsServer(telemetry.metrics, port)
    print(
        f"serving /metrics on 127.0.0.1:{server.port} for the duration "
        f"of the run",
        file=sys.stderr,
    )
    return server


def _emit_telemetry(args: argparse.Namespace, telemetry,
                    server=None) -> None:
    """Write/serve the requested exports (diagnostics go to stderr)."""
    if telemetry is None or not telemetry.enabled:
        if server is not None:
            server.close()
        return
    from repro.telemetry.export import (
        serve_metrics_once,
        write_chrome_trace,
        write_metrics,
    )

    if getattr(args, "trace_out", ""):
        count = write_chrome_trace(telemetry.spans, args.trace_out)
        print(f"wrote {count} spans to {args.trace_out}", file=sys.stderr)
    if getattr(args, "metrics_out", ""):
        count = write_metrics(telemetry.metrics, args.metrics_out)
        print(
            f"wrote {count} metric samples to {args.metrics_out}",
            file=sys.stderr,
        )
    if server is not None:
        server.close()
        print("metrics endpoint closed", file=sys.stderr)
    elif (getattr(args, "metrics_port", None) is not None
          and getattr(args, "metrics_oneshot", False)):
        print(
            f"serving /metrics on 127.0.0.1:{args.metrics_port} "
            f"for one scrape ...",
            file=sys.stderr,
        )
        serve_metrics_once(telemetry.metrics, args.metrics_port)


def _print_stage_timings(args, timings, validator) -> None:
    """Stage + cache diagnostics on stderr (stdout stays report-only)."""
    if timings is None:
        return
    print("\nstage timings (aggregate worker-seconds):", file=sys.stderr)
    print(timings.render(), file=sys.stderr)
    print(validator.cache_stats().render(), file=sys.stderr)
    store = getattr(validator, "artifact_store", None)
    if store is not None:
        print(store.stats().render(), file=sys.stderr)


def _print_exec_stats(args, report) -> None:
    """Process-executor shard stats on stderr (with --stage-timings)."""
    if not getattr(args, "stage_timings", False):
        return
    stats = getattr(report, "exec_stats", None)
    if stats is not None:
        print(stats.render(), file=sys.stderr)


def _print_plan_stats(args, report) -> None:
    """Rule-plan fusion stats on stderr (with --stage-timings)."""
    if not getattr(args, "stage_timings", False):
        return
    stats = getattr(report, "plan", None)
    if stats is not None:
        print(stats.render(), file=sys.stderr)


def _print_degradation(args, report) -> None:
    """Degradation accounting on stderr (with --stage-timings)."""
    if not getattr(args, "stage_timings", False):
        return
    stats = getattr(report, "degradation", None)
    if stats is not None:
        print(stats.render(), file=sys.stderr)


def _cmd_coverage(_args: argparse.Namespace) -> int:
    counts = inventory()
    print(f"{'Category':<16} {'Target':<20} Rules")
    total = 0
    for category, targets in TABLE1_TARGETS.items():
        for target in targets:
            count = counts.get(target, 0)
            if target == "docker":
                count += counts.get("docker_containers", 0)
            total += count
            print(f"{category:<16} {target:<20} {count}")
    print(f"{'':<16} {'TOTAL':<20} {total}")
    for target in EXTENSION_TARGETS:
        print(f"{'Extensions':<16} {target:<20} {counts.get(target, 0)}")
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    validator = load_builtin_validator()
    manifest = validator.manifest(args.target)
    for rule in validator.ruleset_for(manifest):
        state = "x" if rule.enabled else " "
        print(f"[{state}] {rule.rule_type:<9} {rule.name:<45} {' '.join(rule.tags)}")
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    registry = default_registry()
    if args.lens:
        lens = registry.get(args.lens)
    else:
        lens = lens_for_file(args.file, registry)
        if lens is None:
            print(f"no lens matches {args.file!r}; use --lens", file=sys.stderr)
            return 2
    with open(args.file, "r", encoding="utf-8") as handle:
        tree = lens.parse(handle.read(), source=args.file)
    print(tree.render())
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    telemetry = _telemetry_from_args(args)
    store, state_dir = _verdict_store_from_args(args)
    validator = load_builtin_validator(
        cache_size=args.cache_size, workers=args.workers, telemetry=telemetry,
        verdict_store=store, use_plans=not args.no_plan,
        provenance=args.provenance,
        **_executor_kwargs_from_args(args),
    )
    timings = _make_timings(args)
    server = _start_metrics_server(args, telemetry)
    if args.scenario == "host":
        entity = ubuntu_host_entity(
            "demo-host", hardening=args.hardening,
            with_nginx=True, with_mysql=True,
        )
        report = validator.validate_entity(entity, timings=timings)
    elif args.scenario == "fleet":
        _daemon, images, containers = build_fleet(
            FleetSpec(images=args.size, containers_per_image=3,
                      misconfig_rate=1.0 - args.hardening)
        )
        entities = [ContainerEntity(c) for c in containers]
        entities += [DockerImageEntity(i) for i in images]
        report = validator.validate_entities(
            entities, workers=args.workers, timings=timings
        )
    else:  # cloud
        entity = build_cloud_project("demo", violations=args.hardening < 1.0)
        report = validator.validate_entity(entity, timings=timings)
    print(render_text(report, only_failures=args.only_failures))
    _finish_incremental(report, store, state_dir)
    _print_stage_timings(args, timings, validator)
    _print_plan_stats(args, report)
    _print_exec_stats(args, report)
    _print_degradation(args, report)
    _emit_telemetry(args, telemetry, server)
    validator.close()
    return 0 if report.compliant else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    """Scan with telemetry enabled and print the hot/error rankings."""
    from repro.engine.batch import BatchScanner

    telemetry = _telemetry_from_args(args, force=True)
    validator = load_builtin_validator(
        only=args.targets.split(",") if args.targets else None,
        cache_size=args.cache_size,
        workers=args.workers,
        telemetry=telemetry,
        use_plans=not args.no_plan,
        **_executor_kwargs_from_args(args),
    )
    if args.root:
        entities = [HostEntity(args.name, RealFilesystem(args.root))]
    elif args.scenario == "host":
        entities = [
            ubuntu_host_entity(
                "demo-host", hardening=0.5, with_nginx=True, with_mysql=True
            )
        ]
    elif args.scenario == "cloud":
        entities = [build_cloud_project("demo", violations=True)]
    else:  # fleet
        _daemon, images, containers = build_fleet(
            FleetSpec(images=args.size, containers_per_image=3,
                      misconfig_rate=0.5)
        )
        entities = [ContainerEntity(c) for c in containers]
        entities += [DockerImageEntity(i) for i in images]
    server = _start_metrics_server(args, telemetry)
    scanner = BatchScanner(validator, workers=args.workers,
                           cache_size=args.cache_size, telemetry=telemetry)
    summary = scanner.scan_entities(entities, workers=args.workers)
    print(
        f"# profiled {summary.entities_scanned} entities, "
        f"{len(summary.report)} checks in {summary.elapsed_s:.2f}s "
        f"[executor: {getattr(args, 'executor', 'thread')}]"
    )
    print()
    print(telemetry.profiler.render(top=args.top))
    print()
    print("stage latency (aggregate worker-seconds):")
    print(summary.stage_timings.render_extended())
    print(validator.cache_stats().render())
    if summary.exec_stats is not None:
        print(summary.exec_stats.render())
    if summary.artifact_stats is not None:
        print(summary.artifact_stats.render())
    _emit_telemetry(args, telemetry, server)
    validator.close()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Analyze an exported trace: critical path, lanes, shard breakdown."""
    import json

    from repro.telemetry.traceview import (
        TraceError,
        analyze_trace,
        load_trace,
        render_trace_analysis,
    )

    try:
        events = load_trace(args.trace)
        analysis = analyze_trace(events, top=args.top)
    except TraceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(analysis, indent=2))
    else:
        print(render_trace_analysis(analysis, top=args.top))
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.crawler.serialize import dump_frame

    crawler = Crawler()
    frame = crawler.crawl(HostEntity(args.name, RealFilesystem(args.root)))
    blob = dump_frame(frame, indent=2)
    if args.output == "-":
        print(blob)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(blob)
        print(f"wrote {len(blob):,} bytes to {args.output}", file=sys.stderr)
    return 0


def _cmd_validate_frame(args: argparse.Namespace) -> int:
    from repro.crawler.serialize import load_frame

    telemetry = _telemetry_from_args(args)
    store, state_dir = _verdict_store_from_args(args)
    server = _start_metrics_server(args, telemetry)
    with open(args.frame, "r", encoding="utf-8") as handle:
        frame = load_frame(handle.read())
    validator = load_builtin_validator(
        only=args.targets.split(",") if args.targets else None,
        telemetry=telemetry,
        verdict_store=store,
        use_plans=not args.no_plan,
        provenance=args.provenance,
    )
    report = validator.validate_frame(frame)
    _finish_incremental(report, store, state_dir)
    if args.json:
        print(render_json(report))
    elif args.junit:
        from repro.engine.report import render_junit

        print(render_junit(report), end="")
    else:
        print(render_text(report, only_failures=args.only_failures))
    _emit_telemetry(args, telemetry, server)
    return 0 if report.compliant else 1


def _cmd_drift(args: argparse.Namespace) -> int:
    import json

    from repro.crawler.serialize import load_frame
    from repro.engine.drift import diff_reports, drift_to_dict, render_drift

    validator = load_builtin_validator(
        only=args.targets.split(",") if args.targets else None
    )
    reports = []
    for frame_path in (args.baseline, args.current):
        with open(frame_path, "r", encoding="utf-8") as handle:
            reports.append(validator.validate_frame(load_frame(handle.read())))
    drift = diff_reports(reports[0], reports[1])
    if args.json:
        print(json.dumps(drift_to_dict(drift), indent=2))
    else:
        print(render_drift(drift))
    if args.fail_on:
        # Same exit-code semantics as `validate --fail-on`: nonzero only
        # for regressions at or above the threshold severity.
        return 1 if drift.regressions_at_least(args.fail_on) else 0
    return 0 if drift.clean else 1


def _monitor_entities(args: argparse.Namespace) -> list:
    """The fleet one monitor cycle scans (re-crawled every cycle)."""
    if args.root:
        return [HostEntity(args.name, RealFilesystem(args.root))]
    if args.scenario == "host":
        return [ubuntu_host_entity("demo-host", hardening=args.hardening,
                                   with_nginx=True, with_mysql=True)]
    if args.scenario == "cloud":
        return [build_cloud_project("demo",
                                    violations=args.hardening < 1.0)]
    _daemon, images, containers = build_fleet(
        FleetSpec(images=args.size, containers_per_image=3,
                  misconfig_rate=1.0 - args.hardening)
    )
    entities = [ContainerEntity(c) for c in containers]
    entities += [DockerImageEntity(i) for i in images]
    return entities


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.engine.batch import BatchScanner
    from repro.history import (
        EventLog,
        FleetMonitor,
        HistoryStore,
        MonitorConfig,
        WebhookSink,
    )

    telemetry = _telemetry_from_args(args, force=True)
    verdict_store, state_dir = _verdict_store_from_args(args)
    validator = load_builtin_validator(
        only=args.targets.split(",") if args.targets else None,
        cache_size=args.cache_size,
        workers=args.workers,
        telemetry=telemetry,
        verdict_store=verdict_store,
        use_plans=not args.no_plan,
        provenance=args.provenance,
        **_executor_kwargs_from_args(args),
    )
    scanner = BatchScanner(validator, workers=args.workers,
                           cache_size=args.cache_size, telemetry=telemetry)
    entities = _monitor_entities(args)
    history = HistoryStore(args.history_db,
                           retain_cycles=args.retain_cycles)
    sinks = []
    event_log = None
    if args.events_out:
        event_log = EventLog(args.events_out)
        sinks.append(event_log)
    if args.webhook:
        sinks.append(WebhookSink(args.webhook,
                                 timeout=args.webhook_timeout))
    config = MonitorConfig(
        interval_s=args.interval,
        max_cycles=args.max_cycles,
        tags=args.tags.split(",") if args.tags else None,
        workers=args.workers,
        flap_window=args.flap_window,
        flap_min_transitions=args.flap_min_transitions,
        status_cycles=args.status_cycles,
    )

    def on_cycle(cycle_no, cycle_id, summary, events) -> None:
        if summary is None:
            print(f"cycle {cycle_no} (id {cycle_id}): SCAN ERROR",
                  file=sys.stderr)
        else:
            counts = summary.report.counts()
            print(
                f"cycle {cycle_no} (id {cycle_id}): "
                f"{summary.entities_scanned} entities, "
                f"{counts['total']} checks "
                f"({counts['noncompliant']} fail / {counts['error']} err), "
                f"{len(events)} event(s) in {summary.elapsed_s:.2f}s",
                file=sys.stderr,
            )
        for event in events:
            print(f"  {event.render()}", file=sys.stderr)

    monitor = FleetMonitor(scanner, history, entities=entities,
                           config=config, sinks=tuple(sinks),
                           on_cycle=on_cycle)
    server = None
    if args.port is not None:
        server = monitor.serve(args.port)
        print(
            f"serving /metrics /healthz /readyz /status /history on "
            f"http://127.0.0.1:{server.port}",
            file=sys.stderr,
        )
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{server.port}\n")
    import signal

    def _on_sigterm(_signum, _frame) -> None:
        # Same graceful path as Ctrl-C: finish (or skip) the interval
        # wait, flush history, close the event log cleanly.  This is
        # what a container runtime or init system sends on shutdown.
        monitor.request_stop()
        print("SIGTERM received; shutting down after current cycle",
              file=sys.stderr)

    previous_sigterm = signal.getsignal(signal.SIGTERM)
    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        previous_sigterm = None  # non-main thread: leave handlers alone
    try:
        stats = monitor.run()
    except KeyboardInterrupt:
        monitor.request_stop()
        stats = monitor.stats
        print("interrupted; shutting down", file=sys.stderr)
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
        if server is not None:
            server.close()
        if event_log is not None:
            event_log.close()
    if args.report_out and monitor.last_summary is not None:
        # The final cycle's machine-readable report: byte-identical to
        # `repro validate --json` of the same fleet state.
        with open(args.report_out, "w", encoding="utf-8") as handle:
            handle.write(render_json(monitor.last_summary.report) + "\n")
        print(f"final report written to {args.report_out}",
              file=sys.stderr)
    if verdict_store is not None and state_dir:
        path = verdict_store.save(state_dir)
        print(f"verdict store saved to {path}", file=sys.stderr)
    print(stats.render())
    print(history.stats().render(), file=sys.stderr)
    # Telemetry before close: the history and artifact-store gauges are
    # pull-style and scrape live sqlite connections.  (On an uncaught
    # error the executor pool and stores are reclaimed by their
    # finalizers at interpreter exit.)
    _emit_telemetry(args, telemetry)
    history.close()
    validator.close()
    return 1 if stats.scan_errors else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.chaos.fabric import ChaosPlanError
    from repro.chaos.plans import named_plan, plan_names
    from repro.chaos.runner import run_chaos

    if args.list:
        for name in plan_names():
            plan = named_plan(name)
            sites = sorted({rule.site for rule in plan.rules})
            print(f"{name:<18} seed={plan.seed:<6} "
                  f"sites: {', '.join(sites)}")
        return 0
    if not args.plan:
        print("a plan name/path or --list is required", file=sys.stderr)
        return 2
    try:
        result = run_chaos(
            args.plan,
            workers=args.workers,
            executor=args.executor,
            deadline_s=args.deadline,
            frame_deadline_s=args.frame_deadline,
            size=args.size,
            use_plans=not args.no_plan,
        )
    except ChaosPlanError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
    return 0 if result.ok else 1


def _format_cycle_time(stamp: float) -> str:
    import datetime

    return datetime.datetime.fromtimestamp(stamp).strftime(
        "%Y-%m-%d %H:%M:%S"
    )


def _cmd_history(args: argparse.Namespace) -> int:
    import json

    from repro.history import HistoryStore

    store = HistoryStore(args.db)
    try:
        if args.entity:
            rows = [row.to_dict()
                    for row in store.entity_trend(args.entity,
                                                  last=args.last)]
            if args.json:
                print(json.dumps({"entity": args.entity, "trend": rows},
                                 indent=2))
            else:
                print(f"# entity trend: {args.entity}")
                print(f"{'cycle':>6}  {'when':<19} {'pass':>6} {'fail':>6}"
                      f"  worst")
                for row in rows:
                    print(
                        f"{row['cycle_id']:>6}  "
                        f"{_format_cycle_time(row['started_at']):<19} "
                        f"{row['passed']:>6} {row['failed']:>6}  "
                        f"{row['worst_severity'] or '-'}"
                    )
            if not rows:
                print(f"no history for entity {args.entity!r}",
                      file=sys.stderr)
                return 1
            return 0
        rows = [row.to_dict() for row in store.cycles(last=args.last)]
        if args.json:
            print(json.dumps({"cycles": rows}, indent=2))
        else:
            print(
                f"{'cycle':>6}  {'when':<19} {'ent':>4} {'checks':>7} "
                f"{'fail':>5} {'err':>4} {'compl':>7} {'secs':>7} "
                f"{'skip':>6} {'clean/dirty':>11} {'cache':>6}"
            )
            for row in rows:
                if row["scan_error"]:
                    where = row.get("scan_error_stage", "")
                    if row.get("scan_error_frame", ""):
                        where += f"/{row['scan_error_frame']}"
                    where = f" [{where}]" if where else ""
                    print(
                        f"{row['cycle_id']:>6}  "
                        f"{_format_cycle_time(row['started_at']):<19} "
                        f"SCAN ERROR{where}: {row['scan_error']}"
                    )
                    continue
                print(
                    f"{row['cycle_id']:>6}  "
                    f"{_format_cycle_time(row['started_at']):<19} "
                    f"{row['entities']:>4} {row['checks']:>7} "
                    f"{row['noncompliant']:>5} {row['errors']:>4} "
                    f"{row['compliance']:>6.1%} {row['elapsed_s']:>7.2f} "
                    f"{row['rules_skipped']:>6} "
                    f"{row['frames_clean']:>5}/{row['frames_dirty']:<5} "
                    f"{row['parse_hit_rate']:>5.0%}"
                )
        if not rows:
            print("history store is empty", file=sys.stderr)
            return 1
        return 0
    finally:
        store.close()


def _cmd_flaps(args: argparse.Namespace) -> int:
    import json

    from repro.history import HealthAnalyzer, HistoryStore

    store = HistoryStore(args.db)
    try:
        analyzer = HealthAnalyzer(
            store, flap_window=args.window,
            flap_min_transitions=args.min_transitions,
        )
        flapping = analyzer.flapping_details()
        regressing = [
            {"target": key[0], "entity": key[1], "rule": key[2],
             "regressions": count}
            for key, count in analyzer.regression_counts(args.window)
        ]
        if args.json:
            print(json.dumps(
                {"window": args.window,
                 "min_transitions": args.min_transitions,
                 "flapping": flapping,
                 "top_regressing": regressing[:args.top]},
                indent=2,
            ))
            return 0
        print(
            f"# flapping rules (>= {args.min_transitions} transitions in "
            f"last {args.window} cycles): {len(flapping)}"
        )
        for item in flapping:
            series = " -> ".join(item["series"])
            print(
                f"  {item['transitions']} transitions  "
                f"{item['target']}/{item['entity']}/{item['rule']}: {series}"
            )
        if regressing:
            print(f"\ntop regressing rules (last {args.window} cycles):")
            for item in regressing[:args.top]:
                print(
                    f"  {item['regressions']:>3}x  "
                    f"{item['target']}/{item['entity']}/{item['rule']}"
                )
        return 0
    finally:
        store.close()


def _cmd_framediff(args: argparse.Namespace) -> int:
    from repro.crawler.serialize import load_frame
    from repro.crawler.framediff import diff_frames, render_frame_diff

    frames = []
    for frame_path in (args.baseline, args.current):
        with open(frame_path, "r", encoding="utf-8") as handle:
            frames.append(load_frame(handle.read()))
    diff = diff_frames(frames[0], frames[1])
    print(
        render_frame_diff(
            diff,
            unified_for=args.show.split(",") if args.show else None,
            baseline=frames[0],
            current=frames[1],
        )
    )
    return 0 if diff.empty else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.authoring import lint_validator, render_findings

    validator = load_builtin_validator()
    findings = lint_validator(validator)
    print(render_findings(findings))
    has_errors = any(finding.level == "error" for finding in findings)
    return 1 if has_errors else 0


def _explain_frames(args: argparse.Namespace) -> list:
    """The frames ``repro explain`` inspects (one-shot crawl)."""
    if args.frame:
        from repro.crawler.serialize import load_frame

        with open(args.frame, "r", encoding="utf-8") as handle:
            return [load_frame(handle.read())]
    if args.root:
        crawler = Crawler()
        return [crawler.crawl(HostEntity(args.name,
                                         RealFilesystem(args.root)))]
    if args.scenario == "host":
        entities = [ubuntu_host_entity("demo-host",
                                       hardening=args.hardening,
                                       with_nginx=True, with_mysql=True)]
    elif args.scenario == "cloud":
        entities = [build_cloud_project("demo",
                                        violations=args.hardening < 1.0)]
    else:  # fleet
        _daemon, images, containers = build_fleet(
            FleetSpec(images=args.size, containers_per_image=3,
                      misconfig_rate=1.0 - args.hardening)
        )
        entities = [ContainerEntity(c) for c in containers]
        entities += [DockerImageEntity(i) for i in images]
    return list(Crawler().crawl_many(entities, workers=4))


def _explain_since(args: argparse.Namespace) -> int:
    """Cross-cycle mode: locate and explain the current failing streak."""
    from repro.engine.explain import failing_streak_start, render_transition
    from repro.history import HistoryStore

    if not args.rule:
        print("explain --since requires an explicit rule name",
              file=sys.stderr)
        return 2
    store = HistoryStore(args.history_db)
    try:
        rendered = []
        for target in store.targets():
            history = store.rule_history(target, args.entity, args.rule)
            streak = failing_streak_start(history)
            if streak is None:
                continue
            first_fail, last_pass = streak
            failing = store.provenance_for(target, args.entity, args.rule,
                                           first_fail)
            passing = None
            if last_pass is not None:
                passing = store.provenance_for(target, args.entity,
                                               args.rule, last_pass)
            rendered.append(render_transition(
                target, args.entity, args.rule,
                first_fail=first_fail, last_pass=last_pass,
                failing=failing, passing=passing,
            ))
        if not rendered:
            print(
                f"no current failing streak for "
                f"{args.entity}/{args.rule} in {args.history_db}",
                file=sys.stderr,
            )
            return 1
        print("\n\n".join(rendered))
        return 0
    finally:
        store.close()


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from repro.engine.explain import explanation_to_dict, render_explanation
    from repro.engine.results import Verdict

    if args.since:
        return _explain_since(args)
    frames = _explain_frames(args)
    validator = load_builtin_validator(provenance=True)
    report = validator.validate_frames(frames, workers=4)
    results = [r for r in report if r.entity == args.entity]
    if args.rule:
        results = [r for r in results if r.rule.name == args.rule]
    else:
        results = [r for r in results
                   if r.verdict in (Verdict.NONCOMPLIANT, Verdict.ERROR)]
    if args.provenance_out:
        with open(args.provenance_out, "w", encoding="utf-8") as handle:
            json.dump(
                {"explanations":
                    [explanation_to_dict(r) for r in results]},
                handle, indent=2,
            )
            handle.write("\n")
        print(f"provenance written to {args.provenance_out}",
              file=sys.stderr)
    if not results:
        what = (f"rule {args.rule!r}" if args.rule
                else "failing verdicts")
        print(f"no {what} for entity {args.entity!r} "
              f"(known entities: "
              f"{', '.join(sorted({r.entity for r in report})) or 'none'})",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(
            {"explanations": [explanation_to_dict(r) for r in results]},
            indent=2,
        ))
        return 0
    frames_by_key = {frame.describe(): frame for frame in frames}

    def read_text(target: str, path: str) -> str | None:
        frame = frames_by_key.get(target)
        if frame is None:
            return None
        try:
            return frame.read_config(path)
        except Exception:
            return None

    print("\n\n".join(
        render_explanation(result, read_text=read_text,
                           context=args.context)
        for result in results
    ))
    return 0


def _cmd_scaffold(args: argparse.Namespace) -> int:
    from repro.authoring import render_rules_yaml, scaffold_rules

    registry = default_registry()
    lens = registry.get(args.lens) if args.lens else None
    with open(args.file, "r", encoding="utf-8") as handle:
        text = handle.read()
    rules = scaffold_rules(
        text, args.file, lens=lens, max_rules=args.max_rules
    )
    print(render_rules_yaml(rules), end="")
    return 0


def _add_scaling_flags(subparser: argparse.ArgumentParser) -> None:
    """The fleet-pipeline knobs shared by scanning commands."""
    subparser.add_argument(
        "--workers", type=int, default=1,
        help="worker threads for crawling and per-frame validation",
    )
    subparser.add_argument(
        "--cache-size", type=int, default=None,
        help="max parsed artifacts kept in the content-addressed cache "
             "(0 disables it)",
    )
    subparser.add_argument(
        "--stage-timings", action="store_true",
        help="print per-stage wall time and parse-cache stats on stderr",
    )
    subparser.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="fan-out backend: 'thread' runs frames on an in-process "
             "pool; 'process' shards them across worker processes "
             "(reports are byte-identical either way)",
    )
    subparser.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="frames per process shard (default: auto-sized per cycle)",
    )
    subparser.add_argument(
        "--artifact-store", nargs="?", const="auto", default="",
        metavar="PATH",
        help="persistent content-addressed store for parsed artifacts "
             "(sqlite; duplicate content parses once per fleet ever); "
             "bare flag places it under --state-dir",
    )
    _add_plan_flag(subparser)
    _add_chaos_flags(subparser)


def _add_chaos_flags(subparser: argparse.ArgumentParser) -> None:
    """Fault-injection and deadline knobs shared by scanning commands."""
    group = subparser.add_argument_group("resilience")
    group.add_argument(
        "--chaos-plan", default="", metavar="PLAN",
        help="arm a deterministic fault plan for this run: a shipped "
             "plan name (see `repro chaos --list`) or a JSON plan file",
    )
    group.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="soft per-cycle deadline: past it, remaining work is "
             "cancelled at the next stage boundary and the cycle "
             "completes degraded-but-accounted",
    )
    group.add_argument(
        "--frame-deadline", type=float, default=None, metavar="SECONDS",
        help="soft per-frame deadline: an over-budget frame's remaining "
             "rules are quarantined as ERROR verdicts",
    )


def _add_plan_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--no-plan", action="store_true",
        help="disable compiled rule plans (fused single-pass tree "
             "evaluation); reports are byte-identical either way",
    )


def _add_provenance_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--provenance", action="store_true",
        help="attach source-anchored provenance records to every verdict "
             "(embedded in JSON reports, file:line in JUnit failures; "
             "text reports are unchanged)",
    )


def _add_incremental_flags(subparser: argparse.ArgumentParser) -> None:
    """Cross-cycle revalidation knobs shared by scanning commands."""
    group = subparser.add_argument_group("incremental revalidation")
    group.add_argument(
        "--incremental", action="store_true",
        help="replay verdicts whose recorded dependencies are unchanged "
             "(in-memory verdict store)",
    )
    group.add_argument(
        "--state-dir", default="", metavar="DIR",
        help="persist the verdict store under DIR across invocations "
             "(implies --incremental)",
    )
    group.add_argument(
        "--no-incremental", action="store_true",
        help="force a full revalidation even when --state-dir is set",
    )


def _add_telemetry_flags(subparser: argparse.ArgumentParser) -> None:
    """Observability exporters shared by scanning commands."""
    group = subparser.add_argument_group("telemetry")
    group.add_argument(
        "--trace-out", default="", metavar="FILE",
        help="write Chrome trace_event spans (chrome://tracing / Perfetto)",
    )
    group.add_argument(
        "--metrics-out", default="", metavar="FILE",
        help="write Prometheus text exposition after the run",
    )
    group.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve /metrics on 127.0.0.1:PORT on a daemon thread for "
             "the duration of the run (0 picks an ephemeral port)",
    )
    group.add_argument(
        "--metrics-oneshot", action="store_true",
        help="with --metrics-port: block for exactly one scrape after "
             "the run instead of serving throughout it",
    )
    group.add_argument(
        "--log-level", default="warning",
        choices=["debug", "info", "warning", "error"],
        help="structured-log threshold (stderr)",
    )
    group.add_argument(
        "--log-json", action="store_true",
        help="emit logs as one JSON object per line",
    )


def _add_output_format_flags(subparser: argparse.ArgumentParser) -> None:
    """--json / --junit as a mutually exclusive pair."""
    formats = subparser.add_mutually_exclusive_group()
    formats.add_argument("--json", action="store_true",
                         help="emit a machine-readable JSON report")
    formats.add_argument("--junit", action="store_true",
                         help="emit JUnit XML for CI systems")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="configvalidator",
        description="Declarative configuration validation (CVL).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    validate = subparsers.add_parser(
        "validate", help="validate a directory tree with the shipped packs"
    )
    validate.add_argument("--root", default="/", help="rootfs to scan")
    validate.add_argument("--name", default="host", help="entity name in reports")
    validate.add_argument("--targets", default="", help="comma-separated targets")
    validate.add_argument("--tags", default="", help="only rules with these tags")
    _add_output_format_flags(validate)
    validate.add_argument("--rules-dir", default="",
                          help="load packs from a rules repository checkout")
    validate.add_argument("--verbose", action="store_true")
    validate.add_argument("--only-failures", action="store_true")
    validate.add_argument(
        "--fail-on", default="",
        choices=["", "informational", "low", "medium", "high", "critical"],
        help="exit nonzero only for failures at or above this severity",
    )
    _add_scaling_flags(validate)
    _add_provenance_flag(validate)
    _add_incremental_flags(validate)
    _add_telemetry_flags(validate)
    validate.set_defaults(func=_cmd_validate)

    coverage = subparsers.add_parser("coverage", help="Table 1 inventory")
    coverage.set_defaults(func=_cmd_coverage)

    rules = subparsers.add_parser("rules", help="list a target's rules")
    rules.add_argument("target")
    rules.set_defaults(func=_cmd_rules)

    dump = subparsers.add_parser("dump", help="parse a file and print its tree")
    dump.add_argument("file")
    dump.add_argument("--lens", default="", help="force a lens by name")
    dump.set_defaults(func=_cmd_dump)

    demo = subparsers.add_parser("demo", help="validate synthetic entities")
    demo.add_argument("scenario", choices=["host", "fleet", "cloud"])
    demo.add_argument("--hardening", type=float, default=0.5)
    demo.add_argument("--size", type=int, default=5)
    demo.add_argument("--only-failures", action="store_true")
    _add_scaling_flags(demo)
    _add_provenance_flag(demo)
    _add_incremental_flags(demo)
    _add_telemetry_flags(demo)
    demo.set_defaults(func=_cmd_demo)

    profile = subparsers.add_parser(
        "profile",
        help="scan with telemetry on and rank hot/erroring rules and lenses",
    )
    profile.add_argument("--root", default="",
                         help="rootfs to scan (default: synthetic fleet)")
    profile.add_argument("--name", default="host",
                         help="entity name in reports (with --root)")
    profile.add_argument("--targets", default="",
                         help="comma-separated targets")
    profile.add_argument("--scenario", choices=["host", "fleet", "cloud"],
                         default="fleet",
                         help="synthetic workload when --root is not given")
    profile.add_argument("--size", type=int, default=5,
                         help="fleet size for the synthetic scenario")
    profile.add_argument("--top", type=int, default=10,
                         help="rows per profile ranking")
    _add_scaling_flags(profile)
    _add_telemetry_flags(profile)
    profile.set_defaults(func=_cmd_profile)

    trace = subparsers.add_parser(
        "trace",
        help="analyze an exported trace: critical path, worker lanes, shards",
    )
    trace.add_argument("trace", help="trace file written by --trace-out")
    trace.add_argument("--top", type=int, default=10,
                       help="rows per section (critical path, lanes, "
                            "stragglers)")
    trace.add_argument("--json", action="store_true",
                       help="emit the analysis as JSON")
    trace.set_defaults(func=_cmd_trace)

    snapshot = subparsers.add_parser(
        "snapshot", help="capture a directory tree as a portable frame"
    )
    snapshot.add_argument("--root", default="/")
    snapshot.add_argument("--name", default="host")
    snapshot.add_argument("-o", "--output", default="-",
                          help="frame file ('-' for stdout)")
    snapshot.set_defaults(func=_cmd_snapshot)

    validate_frame = subparsers.add_parser(
        "validate-frame", help="validate a previously captured frame"
    )
    validate_frame.add_argument("frame")
    validate_frame.add_argument("--targets", default="")
    _add_output_format_flags(validate_frame)
    validate_frame.add_argument("--only-failures", action="store_true")
    _add_plan_flag(validate_frame)
    _add_provenance_flag(validate_frame)
    _add_incremental_flags(validate_frame)
    _add_telemetry_flags(validate_frame)
    validate_frame.set_defaults(func=_cmd_validate_frame)

    drift = subparsers.add_parser(
        "drift", help="compare verdicts between two captured frames"
    )
    drift.add_argument("baseline", help="earlier frame file")
    drift.add_argument("current", help="later frame file")
    drift.add_argument("--targets", default="")
    drift.add_argument("--json", action="store_true",
                       help="emit the drift report as JSON")
    drift.add_argument(
        "--fail-on", "--fail-level", dest="fail_on", default="",
        choices=["", "informational", "low", "medium", "high", "critical"],
        help="exit nonzero only for regressions at or above this "
             "severity (same semantics as `validate --fail-on`)",
    )
    drift.set_defaults(func=_cmd_drift)

    monitor = subparsers.add_parser(
        "monitor",
        help="run scan cycles on an interval with durable history, "
             "a live HTTP endpoint, and a health event stream",
    )
    monitor.add_argument("--root", default="",
                         help="rootfs to rescan each cycle "
                              "(default: synthetic fleet)")
    monitor.add_argument("--name", default="host",
                         help="entity name in reports (with --root)")
    monitor.add_argument("--targets", default="",
                         help="comma-separated targets")
    monitor.add_argument("--tags", default="",
                         help="only rules with these tags")
    monitor.add_argument("--scenario", choices=["host", "fleet", "cloud"],
                         default="fleet",
                         help="synthetic workload when --root is not given")
    monitor.add_argument("--size", type=int, default=5,
                         help="fleet size for the synthetic scenario")
    monitor.add_argument("--hardening", type=float, default=0.5,
                         help="hardening rate of the synthetic workload")
    monitor.add_argument("--interval", type=float, default=30.0,
                         metavar="SECONDS",
                         help="sleep between scan cycles")
    monitor.add_argument("--max-cycles", type=int, default=None,
                         metavar="N",
                         help="stop after N cycles (default: run forever)")
    monitor.add_argument("--history-db", default="repro-history.sqlite",
                         metavar="PATH",
                         help="SQLite fleet-health history store")
    monitor.add_argument("--retain-cycles", type=int, default=None,
                         metavar="N",
                         help="prune history beyond the newest N cycles")
    monitor.add_argument("--events-out", default="", metavar="FILE",
                         help="append health events as NDJSON")
    monitor.add_argument("--webhook", default="", metavar="URL",
                         help="POST each cycle's events as JSON "
                              "(best-effort, bounded retry)")
    monitor.add_argument("--webhook-timeout", type=float, default=3.0,
                         metavar="SECONDS")
    monitor.add_argument("--flap-window", type=int, default=6,
                         metavar="CYCLES",
                         help="sliding window for flap detection")
    monitor.add_argument("--flap-min-transitions", type=int, default=3,
                         metavar="N",
                         help="verdict changes within the window that "
                              "classify a rule as flapping")
    monitor.add_argument("--port", type=int, default=None, metavar="PORT",
                         help="serve /metrics /healthz /readyz /status "
                              "/history on 127.0.0.1:PORT (0 = ephemeral)")
    monitor.add_argument("--port-file", default="", metavar="FILE",
                         help="write the bound endpoint port to FILE")
    monitor.add_argument("--status-cycles", type=int, default=20,
                         metavar="N",
                         help="cycle rollups returned by /history")
    monitor.add_argument("--report-out", default="", metavar="FILE",
                         help="write the final cycle's JSON report "
                              "(byte-identical to `validate --json`)")
    _add_scaling_flags(monitor)
    _add_provenance_flag(monitor)
    _add_incremental_flags(monitor)
    _add_telemetry_flags(monitor)
    monitor.set_defaults(func=_cmd_monitor)

    history = subparsers.add_parser(
        "history",
        help="inspect a monitor's history store (cycle table, trends)",
    )
    history.add_argument("--db", default="repro-history.sqlite",
                         metavar="PATH", help="history store to read")
    history.add_argument("--last", type=int, default=None, metavar="N",
                         help="only the newest N cycles")
    history.add_argument("--entity", default="", metavar="TARGET",
                         help="per-entity trend instead of the cycle table")
    history.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON")
    history.set_defaults(func=_cmd_history)

    flaps = subparsers.add_parser(
        "flaps",
        help="flapping and top-regressing rules from a history store",
    )
    flaps.add_argument("--db", default="repro-history.sqlite",
                       metavar="PATH", help="history store to read")
    flaps.add_argument("--window", type=int, default=6, metavar="CYCLES",
                       help="sliding window for flap detection")
    flaps.add_argument("--min-transitions", type=int, default=3,
                       metavar="N",
                       help="verdict changes within the window that "
                            "classify a rule as flapping")
    flaps.add_argument("--top", type=int, default=10,
                       help="rows in the top-regressing ranking")
    flaps.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")
    flaps.set_defaults(func=_cmd_flaps)

    chaos = subparsers.add_parser(
        "chaos",
        help="run a scan cycle under a fault plan and assert the "
             "degraded-but-accounted resilience invariants",
    )
    chaos.add_argument("plan", nargs="?", default="",
                       help="shipped plan name or JSON plan file")
    chaos.add_argument("--list", action="store_true",
                       help="list the shipped fault plans and exit")
    chaos.add_argument("--workers", type=int, default=2,
                       help="worker threads/processes for both runs")
    chaos.add_argument("--executor", choices=("thread", "process"),
                       default="thread",
                       help="fan-out backend (plans with exec.worker "
                            "rules force 'process')")
    chaos.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="cycle deadline for the armed run")
    chaos.add_argument("--frame-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-frame deadline for the armed run")
    chaos.add_argument("--size", type=int, default=4, metavar="IMAGES",
                       help="synthetic fleet size (images; 2 containers "
                            "each)")
    chaos.add_argument("--json", action="store_true",
                       help="emit the harness verdict as JSON")
    _add_plan_flag(chaos)
    chaos.set_defaults(func=_cmd_chaos)

    framediff = subparsers.add_parser(
        "framediff", help="diff two captured frames (files/packages/runtime)"
    )
    framediff.add_argument("baseline")
    framediff.add_argument("current")
    framediff.add_argument("--show", default="",
                           help="comma-separated paths to show unified diffs for")
    framediff.set_defaults(func=_cmd_framediff)

    explain = subparsers.add_parser(
        "explain",
        help="explain verdicts with source-anchored diagnostics "
             "(file:line:col, excerpt, predicate, suggested action)",
    )
    explain.add_argument("entity", help="entity (pack) to explain, "
                                        "e.g. nginx or sshd")
    explain.add_argument("rule", nargs="?", default="",
                         help="explain just this rule (any verdict); "
                              "default: every failing verdict")
    explain.add_argument("--root", default="",
                         help="rootfs to scan (default: synthetic host)")
    explain.add_argument("--name", default="host",
                         help="entity name in reports (with --root)")
    explain.add_argument("--frame", default="", metavar="FILE",
                         help="explain a previously captured frame instead "
                              "of crawling")
    explain.add_argument("--scenario", choices=["host", "fleet", "cloud"],
                         default="host",
                         help="synthetic workload when neither --root nor "
                              "--frame is given")
    explain.add_argument("--size", type=int, default=5,
                         help="fleet size for the synthetic scenario")
    explain.add_argument("--hardening", type=float, default=0.5,
                         help="hardening rate of the synthetic workload")
    explain.add_argument("--context", type=int, default=2,
                         help="source lines shown above each anchor")
    explain.add_argument("--json", action="store_true",
                         help="emit machine-readable explanations")
    explain.add_argument("--provenance-out", default="", metavar="FILE",
                         help="also write the provenance records as JSON")
    explain.add_argument("--since", action="store_true",
                         help="cross-cycle mode: find the cycle the rule "
                              "started failing in a monitor's history "
                              "store and diff the anchored source lines")
    explain.add_argument("--history-db", default="repro-history.sqlite",
                         metavar="PATH",
                         help="history store for --since")
    explain.set_defaults(func=_cmd_explain)

    lint = subparsers.add_parser(
        "lint", help="lint the shipped rule packs"
    )
    lint.set_defaults(func=_cmd_lint)

    scaffold = subparsers.add_parser(
        "scaffold", help="generate a golden-config CVL profile from a file"
    )
    scaffold.add_argument("file")
    scaffold.add_argument("--lens", default="")
    scaffold.add_argument("--max-rules", type=int, default=100)
    scaffold.set_defaults(func=_cmd_scaffold)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`); not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
