"""Deterministic, seeded fault-injection fabric.

Fault handling in a fleet validator is only trustworthy if it can be
*exercised*: this module arms a process-wide :class:`FaultPlan` whose
named injection sites are threaded through the scanner's hot paths
(filesystem reads, lens parses, rule evaluation, shard dispatch, sqlite
stores, webhook delivery, wall clocks).  Every site costs one attribute
read and a branch when no plan is armed::

    if _CHAOS.armed:
        _CHAOS.fire("fs.read", path)

Determinism is the point.  Fire decisions are not drawn from a shared
sequential RNG (which would make them depend on thread scheduling);
each draw hashes ``(seed, site, key, n)`` where ``n`` is a per-(site,
key) counter.  Two runs of the same plan over the same frames make the
same draws regardless of worker count or executor backend, which is
what lets ``repro chaos`` assert that unaffected frames are
byte-identical to a fault-free run.

Plans propagate to forked/spawned worker processes through the
``REPRO_CHAOS_PLAN`` environment variable: :func:`arm_plan` exports the
plan JSON, and the pool initializer calls :func:`arm_from_env`.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os
import sqlite3
import threading
import time
import urllib.error
from dataclasses import dataclass, field

from repro.errors import EngineError, FileNotFoundInFrame, LensError, SchemaError

#: Environment variable carrying the armed plan JSON into worker processes.
CHAOS_ENV = "REPRO_CHAOS_PLAN"

#: Every injection site the fabric knows about.  Site code passes these
#: names verbatim; plans referencing unknown sites are rejected up front
#: so a typo'd plan fails loudly instead of silently injecting nothing.
SITES = (
    "fs.read",        # FilesystemView.read_text (real + virtual)
    "lens.parse",     # Normalizer tree/table parse, keyed by frame|path
    "rule.eval",      # per-rule evaluation, keyed by frame|entity/rule
    "exec.worker",    # shard dispatch (parent side), keyed by shard-N
    "store.sqlite",   # artifact-store operations, keyed by path|op
    "webhook.send",   # webhook delivery attempts, keyed by url
    "clock.skew",     # wall-clock reads (cycle start, shard start)
    "retry",          # retry_with_backoff attempts, keyed by caller label
)

_MODES = ("error", "exit", "delay", "skew")


class ChaosPlanError(ValueError):
    """A fault-plan document is malformed."""


# ---------------------------------------------------------------------------
# Chaos exceptions.  Each is typed as the class the target site already
# absorbs, so an injected fault travels the *production* error path; the
# ``chaos_site`` attribute lets the absorbing handler credit the fabric.


class ChaosFileError(FileNotFoundInFrame):
    """Injected filesystem-read failure (``fs.read``)."""

    chaos_site = "fs.read"


class ChaosLensError(LensError):
    """Injected parser crash (``lens.parse``)."""

    chaos_site = "lens.parse"

    def __init__(self, path: str):
        super().__init__("chaos", f"injected parser crash on {path}")


class ChaosSchemaError(SchemaError):
    """Injected schema-parser crash (``lens.parse`` on the table path)."""

    chaos_site = "lens.parse"

    def __init__(self, path: str):
        super().__init__(f"injected schema-parser crash on {path}")


class ChaosRuleError(EngineError):
    """Injected rule-evaluation failure (``rule.eval``)."""

    chaos_site = "rule.eval"


class ChaosStoreError(sqlite3.DatabaseError):
    """Injected store corruption (``store.sqlite``)."""

    chaos_site = "store.sqlite"


class ChaosWebhookError(urllib.error.URLError):
    """Injected webhook delivery failure (``webhook.send``)."""

    chaos_site = "webhook.send"

    def __init__(self, url: str):
        super().__init__(f"injected delivery failure to {url}")


class ChaosRetryError(RuntimeError):
    """Injected retryable failure (``retry``)."""

    chaos_site = "retry"


_SITE_ERRORS = {
    "fs.read": lambda key: ChaosFileError(f"injected read failure: {key}"),
    "lens.parse": ChaosLensError,
    "rule.eval": lambda key: ChaosRuleError(f"injected evaluation failure: {key}"),
    "store.sqlite": lambda key: ChaosStoreError(
        f"injected corruption: database disk image is malformed ({key})"
    ),
    "webhook.send": ChaosWebhookError,
    "retry": lambda key: ChaosRetryError(f"injected retryable failure: {key}"),
}


# ---------------------------------------------------------------------------
# Plan model


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where, how often, how many times, what."""

    site: str
    match: str = "*"          # fnmatch pattern over the site key
    probability: float = 1.0  # per-draw fire probability
    count: int = 0            # max fires (0 = unlimited)
    mode: str = "error"       # error | exit | delay | skew
    delay_s: float = 0.0      # mode=delay: injected latency
    skew_s: float = 0.0       # mode=skew: injected clock offset

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultRule":
        if not isinstance(doc, dict):
            raise ChaosPlanError(f"fault rule must be an object, got {doc!r}")
        site = doc.get("site")
        if site not in SITES:
            raise ChaosPlanError(
                f"unknown injection site {site!r}; known sites: "
                + ", ".join(SITES)
            )
        mode = doc.get("mode", "skew" if site == "clock.skew" else "error")
        if mode not in _MODES:
            raise ChaosPlanError(f"unknown fault mode {mode!r} for site {site!r}")
        if mode == "exit" and site != "exec.worker":
            raise ChaosPlanError("mode 'exit' is only valid for exec.worker")
        probability = float(doc.get("probability", 1.0))
        if not 0.0 <= probability <= 1.0:
            raise ChaosPlanError(f"probability must be in [0, 1], got {probability}")
        count = int(doc.get("count", 0))
        if count < 0:
            raise ChaosPlanError(f"count must be >= 0, got {count}")
        return cls(
            site=site,
            match=str(doc.get("match", "*")),
            probability=probability,
            count=count,
            mode=mode,
            delay_s=max(0.0, float(doc.get("delay_s", 0.0))),
            skew_s=float(doc.get("skew_s", 0.0)),
        )

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "match": self.match,
            "probability": self.probability,
            "count": self.count,
            "mode": self.mode,
            "delay_s": self.delay_s,
            "skew_s": self.skew_s,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault rules."""

    name: str = "unnamed"
    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise ChaosPlanError(f"fault plan must be an object, got {doc!r}")
        rules = doc.get("rules", [])
        if not isinstance(rules, list):
            raise ChaosPlanError("'rules' must be a list")
        return cls(
            name=str(doc.get("name", "unnamed")),
            seed=int(doc.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise ChaosPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ChaosPlanError(f"cannot read fault plan {path!r}: {exc}") from exc
        return cls.from_json(text)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# Accounting


class ChaosAccount:
    """Thread-safe degradation counters for one process.

    Always present (deadline cancellations count even with no plan
    armed); worker processes ship a :meth:`delta_since` back with each
    shard result so the parent's account covers the whole cycle.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.injected: dict[str, int] = {}
        self.absorbed: dict[str, int] = {}
        self.fired: list[tuple[str, str]] = []
        self.stores_quarantined = 0
        self.frames_quarantined = 0
        self.deadline_cancellations = 0

    # -- recording -------------------------------------------------------

    def note_injected(self, site: str, key: str) -> None:
        with self._lock:
            self.injected[site] = self.injected.get(site, 0) + 1
            self.fired.append((site, key))

    def note_absorbed(self, site: str) -> None:
        with self._lock:
            self.absorbed[site] = self.absorbed.get(site, 0) + 1

    def note_store_quarantined(self) -> None:
        with self._lock:
            self.stores_quarantined += 1

    def note_frame_quarantined(self) -> None:
        with self._lock:
            self.frames_quarantined += 1

    def note_deadline_cancellation(self) -> None:
        with self._lock:
            self.deadline_cancellations += 1

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "injected": dict(self.injected),
                "absorbed": dict(self.absorbed),
                "fired": list(self.fired),
                "stores_quarantined": self.stores_quarantined,
                "frames_quarantined": self.frames_quarantined,
                "deadline_cancellations": self.deadline_cancellations,
            }

    def delta_since(self, before: dict) -> dict:
        now = self.snapshot()
        return {
            "injected": _dict_delta(now["injected"], before["injected"]),
            "absorbed": _dict_delta(now["absorbed"], before["absorbed"]),
            "fired": now["fired"][len(before["fired"]):],
            "stores_quarantined": (now["stores_quarantined"]
                                   - before["stores_quarantined"]),
            "frames_quarantined": (now["frames_quarantined"]
                                   - before["frames_quarantined"]),
            "deadline_cancellations": (now["deadline_cancellations"]
                                       - before["deadline_cancellations"]),
        }

    def merge_delta(self, delta: dict) -> None:
        """Fold a worker-process delta into this (parent) account."""
        if not delta:
            return
        with self._lock:
            for site, n in delta.get("injected", {}).items():
                self.injected[site] = self.injected.get(site, 0) + n
            for site, n in delta.get("absorbed", {}).items():
                self.absorbed[site] = self.absorbed.get(site, 0) + n
            self.fired.extend(tuple(item) for item in delta.get("fired", ()))
            self.stores_quarantined += delta.get("stores_quarantined", 0)
            self.frames_quarantined += delta.get("frames_quarantined", 0)
            self.deadline_cancellations += delta.get("deadline_cancellations", 0)


def _dict_delta(now: dict, before: dict) -> dict:
    out = {}
    for key, value in now.items():
        diff = value - before.get(key, 0)
        if diff:
            out[key] = diff
    return out


def delta_is_empty(delta: dict | None) -> bool:
    if not delta:
        return True
    return not (delta.get("injected") or delta.get("absorbed")
                or delta.get("fired") or delta.get("stores_quarantined")
                or delta.get("frames_quarantined")
                or delta.get("deadline_cancellations"))


# ---------------------------------------------------------------------------
# The fabric singleton


class ChaosFabric:
    """Process-wide injection state.  ``armed`` gates every site."""

    def __init__(self) -> None:
        self.armed = False
        self.plan: FaultPlan | None = None
        self.account = ChaosAccount()
        self._lock = threading.Lock()
        self._rules_by_site: dict[str, list[FaultRule]] = {}
        self._draws: dict[tuple[str, str], int] = {}
        self._fires: dict[int, int] = {}  # rule index -> fires so far

    # -- arming ----------------------------------------------------------

    def arm(self, plan: FaultPlan, *, export_env: bool = True) -> None:
        with self._lock:
            self.plan = plan
            by_site: dict[str, list[FaultRule]] = {}
            for rule in plan.rules:
                if rule.probability <= 0.0:
                    # Can never fire: keep the site's dispatch at a dict
                    # miss instead of paying the draw (lock + hash) per
                    # call.  This is what the null plan's <= 2% overhead
                    # gate prices.
                    continue
                by_site.setdefault(rule.site, []).append(rule)
            self._rules_by_site = by_site
            self._draws = {}
            self._fires = {}
            self.account = ChaosAccount()
            self.armed = True
        if export_env:
            os.environ[CHAOS_ENV] = plan.to_json()

    def disarm(self) -> None:
        with self._lock:
            self.armed = False
            self.plan = None
            self._rules_by_site = {}
            self._draws = {}
            self._fires = {}
        os.environ.pop(CHAOS_ENV, None)

    def arm_from_env(self) -> bool:
        """Arm from ``REPRO_CHAOS_PLAN`` if set (worker initializer)."""
        text = os.environ.get(CHAOS_ENV)
        if not text:
            return False
        self.arm(FaultPlan.from_json(text), export_env=False)
        return True

    # -- draws -----------------------------------------------------------

    def _draw(self, site: str, key: str) -> FaultRule | None:
        """One deterministic draw; returns the fault rule to apply, if any.

        The draw hashes ``(seed, site, key, n)`` with ``n`` a per-(site,
        key) counter, so decisions depend only on how many times this
        exact site/key pair has been reached -- not on thread or shard
        interleaving.
        """
        rules = self._rules_by_site.get(site)
        if not rules:
            return None
        plan = self.plan
        with self._lock:
            for index, rule in enumerate(rules):
                if rule.count and self._fires.get(id(rule), 0) >= rule.count:
                    continue
                if not fnmatch.fnmatchcase(key, rule.match):
                    continue
                counter_key = (site, key)
                n = self._draws.get(counter_key, 0)
                self._draws[counter_key] = n + 1
                if rule.probability < 1.0:
                    digest = hashlib.sha256(
                        f"{plan.seed}|{site}|{key}|{n}".encode()
                    ).digest()
                    u = int.from_bytes(digest[:8], "big") / 2.0 ** 64
                    if u >= rule.probability:
                        return None
                self._fires[id(rule)] = self._fires.get(id(rule), 0) + 1
                return rule
        return None

    def fire(self, site: str, key: str, *, error=None) -> None:
        """Raise-style site: inject a typed failure (or latency) if drawn.

        ``error`` overrides the site's default exception factory for
        call sites whose absorbing handler expects a different type
        (e.g. the schema-table parse path absorbs ``SchemaError``).
        """
        rule = self._draw(site, key)
        if rule is None:
            return
        self.account.note_injected(site, key)
        if rule.mode == "delay":
            # Latency is inherently absorbed: the site just runs late.
            self.account.note_absorbed(site)
            if rule.delay_s:
                time.sleep(rule.delay_s)
            return
        factory = error if error is not None else _SITE_ERRORS[site]
        raise factory(key)

    def decide(self, site: str, key: str) -> FaultRule | None:
        """Query-style site: return the drawn fault rule for the caller
        to apply (worker kill modes, clock offsets)."""
        rule = self._draw(site, key)
        if rule is not None:
            self.account.note_injected(site, key)
        return rule

    def skew(self, key: str) -> float:
        """Injected clock offset in seconds (0.0 when none drawn)."""
        rule = self._draw("clock.skew", key)
        if rule is None:
            return 0.0
        self.account.note_injected("clock.skew", key)
        # A skewed clock never breaks the cycle; absorbed by definition.
        self.account.note_absorbed("clock.skew")
        return rule.skew_s


#: The process-wide fabric.  Site code imports this and checks ``armed``.
_CHAOS = ChaosFabric()


def fabric() -> ChaosFabric:
    return _CHAOS


def arm_plan(plan: FaultPlan, *, export_env: bool = True) -> None:
    _CHAOS.arm(plan, export_env=export_env)


def disarm() -> None:
    _CHAOS.disarm()


def arm_from_env() -> bool:
    return _CHAOS.arm_from_env()


def chaos_site(error: BaseException) -> str | None:
    """The injection site of a chaos-injected exception, else ``None``."""
    return getattr(error, "chaos_site", None)


def absorbed(error: BaseException) -> bool:
    """Credit an absorbed chaos fault.  Call from ``except`` handlers
    that swallow the error; a no-op (and False) for organic exceptions."""
    site = getattr(error, "chaos_site", None)
    if site is None:
        return False
    _CHAOS.account.note_absorbed(site)
    return True
