"""Deterministic fault injection, deadlines, and degradation accounting.

The chaos fabric is how this codebase *proves* its robustness story:
seeded fault plans fire typed failures through the production error
paths, soft deadlines quarantine runaway frames without losing the
cycle, corrupt stores are moved aside and rebuilt, and every absorbed
fault is accounted in :class:`DegradationStats` so a partial cycle can
never masquerade as a clean one.

Hot-path contract: every injection site is guarded by
``if _CHAOS.armed`` -- one attribute read and a branch when no plan is
armed (enforced by ``benchmarks/bench_chaos.py``).
"""

from repro.chaos.deadline import RunDeadline
from repro.chaos.fabric import (
    CHAOS_ENV,
    SITES,
    ChaosAccount,
    ChaosFabric,
    ChaosPlanError,
    FaultPlan,
    FaultRule,
    _CHAOS,
    absorbed,
    arm_from_env,
    arm_plan,
    chaos_site,
    delta_is_empty,
    disarm,
    fabric,
)
from repro.chaos.plans import NAMED_PLANS, named_plan, plan_names, resolve_plan
from repro.chaos.quarantine import is_corruption, quarantine_database
from repro.chaos.stats import DegradationStats

__all__ = [
    "CHAOS_ENV",
    "SITES",
    "ChaosAccount",
    "ChaosFabric",
    "ChaosPlanError",
    "DegradationStats",
    "FaultPlan",
    "FaultRule",
    "NAMED_PLANS",
    "RunDeadline",
    "_CHAOS",
    "absorbed",
    "arm_from_env",
    "arm_plan",
    "chaos_site",
    "delta_is_empty",
    "disarm",
    "fabric",
    "is_corruption",
    "named_plan",
    "plan_names",
    "quarantine_database",
    "resolve_plan",
]
