"""The ``repro chaos`` resilience harness.

Runs one synthetic-fleet scan cycle twice over the *same* captured
frames -- once clean, once under a named fault plan -- and asserts the
degraded-but-accounted contract:

1. **terminates**: the armed cycle completes (and within the cycle
   deadline budget when one is set);
2. **schema-valid report**: the degraded cycle's JSON report parses and
   carries the ``degraded`` marker exactly when the cycle degraded;
3. **blast radius**: frames the plan could not have touched produce
   byte-identical results to the fault-free run;
4. **accounting**: every injected fault is accounted as absorbed --
   nothing vanishes silently.

The harness is deliberately built from the same public pieces an
operator uses (``load_builtin_validator``, ``validate_frames``,
``render_json``), so a passing ``repro chaos`` run certifies the real
pipeline, not a test double.
"""

from __future__ import annotations

import fnmatch
import json
import os
import tempfile
import time
from dataclasses import dataclass, field

from repro.chaos.fabric import FaultPlan, arm_plan, disarm, fabric
from repro.chaos.plans import resolve_plan
from repro.chaos.stats import DegradationStats


@dataclass
class ChaosRunResult:
    """Outcome of one ``repro chaos`` harness run."""

    plan: str
    elapsed_s: float = 0.0
    baseline_elapsed_s: float = 0.0
    checks: int = 0
    degradation: object | None = None
    #: Frames whose results may legitimately differ under the plan.
    affected_frames: list[str] = field(default_factory=list)
    #: Frames outside the blast radius that nevertheless changed.
    unexpected_diffs: list[str] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        degradation = self.degradation
        return {
            "plan": self.plan,
            "ok": self.ok,
            "elapsed_s": round(self.elapsed_s, 4),
            "baseline_elapsed_s": round(self.baseline_elapsed_s, 4),
            "checks": self.checks,
            "affected_frames": sorted(self.affected_frames),
            "unexpected_diffs": sorted(self.unexpected_diffs),
            "failures": list(self.failures),
            "degradation": (degradation.to_dict()
                            if degradation is not None else None),
        }

    def render(self) -> str:
        lines = [
            f"chaos run: plan={self.plan} "
            f"{'PASS' if self.ok else 'FAIL'} "
            f"({self.checks} checks, {self.elapsed_s:.2f}s armed / "
            f"{self.baseline_elapsed_s:.2f}s clean)",
        ]
        if self.degradation is not None:
            for row in self.degradation.render().splitlines():
                lines.append(f"  {row}")
        if self.affected_frames:
            lines.append(
                f"  blast radius: {len(self.affected_frames)} frame(s)")
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        return "\n".join(lines)


def _build_frames(size: int, seed: int = 7):
    """A deterministic synthetic fleet, crawled once and shared by the
    clean and armed runs (identical inputs, so diffs are the plan's)."""
    from repro.crawler import ContainerEntity, Crawler, DockerImageEntity
    from repro.workloads import FleetSpec, build_fleet

    _daemon, images, containers = build_fleet(
        FleetSpec(images=max(1, size), containers_per_image=2,
                  misconfig_rate=0.5, seed=seed)
    )
    entities = [ContainerEntity(c) for c in containers]
    entities += [DockerImageEntity(i) for i in images]
    return Crawler().crawl_many(entities)


def _per_frame_docs(report) -> dict[str, str]:
    """{frame target: canonical JSON of its results} for byte-compare."""
    from repro.engine.report import result_to_dict

    frames: dict[str, list] = {}
    for result in report:
        frames.setdefault(result.target, []).append(result_to_dict(result))
    return {
        target: json.dumps(docs, sort_keys=True)
        for target, docs in frames.items()
    }


def _frame_paths(frames) -> dict[str, list[str]]:
    """{frame target: file paths it holds} for blast-radius matching."""
    out: dict[str, list[str]] = {}
    for frame in frames:
        try:
            paths = frame.files.files_under("/")
        except Exception:
            paths = []
        out[frame.describe()] = paths
    return out


def _affected_frames(plan: FaultPlan, degradation,
                     frame_paths: dict[str, list[str]]) -> set[str]:
    """The superset of frames the armed run may legitimately change.

    File-keyed sites (``fs.read`` / ``lens.parse``) affect any frame
    holding a matching path; ``rule.eval`` keys carry the frame key
    outright; worker kills fall back to in-parent evaluation and store
    faults fall back to re-parsing, so neither may change results.  A
    cycle with deadline cancellations has an unbounded blast radius.
    """
    affected: set[str] = set()
    if degradation is None:
        return affected
    if degradation.deadline_cancellations or degradation.frames_quarantined:
        return set(frame_paths)
    file_patterns = [
        rule.match for rule in plan.rules
        if rule.site in ("fs.read", "lens.parse") and rule.probability > 0
    ]
    for target, paths in frame_paths.items():
        for pattern in file_patterns:
            if any(fnmatch.fnmatchcase(path, pattern) for path in paths):
                affected.add(target)
                break
    for site, key in degradation.fired:
        if site == "rule.eval" and "|" in key:
            affected.add(key.split("|", 1)[0])
        elif site in ("fs.read", "lens.parse"):
            for target, paths in frame_paths.items():
                if key in paths:
                    affected.add(target)
    return affected


def _scan_once(frames, *, kwargs: dict, store_dir: str | None,
               workers: int, fast_process: bool = False):
    """One full scan cycle (batch-scanner path, so every injection site
    a monitor cycle crosses is on this code path too)."""
    from repro.engine.batch import BatchScanner
    from repro.rules import load_builtin_validator

    run_kwargs = dict(kwargs)
    if store_dir is not None:
        run_kwargs["artifact_store"] = os.path.join(store_dir, "artifacts.db")
    backend = None
    if fast_process and run_kwargs.get("executor") == "process":
        # A killed worker is only detected by the shard timeout; the
        # harness shortens it so the kill/respawn/heal sequence runs in
        # seconds, not the production 30s-per-attempt budget.
        from repro.exec import ProcessBackend

        backend = ProcessBackend(timeout_s=5.0, max_respawns=1)
        run_kwargs["executor"] = backend
    validator = load_builtin_validator(**run_kwargs)
    started = time.perf_counter()
    try:
        summary = BatchScanner(validator, workers=workers).scan_frames(frames)
    finally:
        elapsed = time.perf_counter() - started
        validator.close()
        if backend is not None:
            backend.close()
    return summary, elapsed


def run_chaos(plan_ref: str, *, workers: int = 1, executor: str = "thread",
              deadline_s: float | None = None,
              frame_deadline_s: float | None = None,
              size: int = 4, use_plans: bool = True) -> ChaosRunResult:
    """Run the resilience harness under one fault plan.

    The harness provisions what the plan needs to actually bite: plans
    with ``exec.worker`` rules run on the process backend, plans with
    ``store.sqlite`` rules get a throwaway artifact store (one fresh
    store per run, so the clean baseline stays symmetric).
    """
    from repro.engine.report import render_json

    plan = resolve_plan(plan_ref)
    result = ChaosRunResult(plan=plan.name)
    sites = {rule.site for rule in plan.rules}
    if "exec.worker" in sites and executor == "thread":
        executor = "process"
    needs_store = "store.sqlite" in sites

    frames = _build_frames(size)
    frame_paths = _frame_paths(frames)

    kwargs: dict = {"workers": workers, "use_plans": use_plans}
    if executor != "thread":
        kwargs["executor"] = executor

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        # ---- clean run: the byte-identity baseline --------------------
        disarm()
        baseline_store = os.path.join(tmp, "clean") if needs_store else None
        if baseline_store is not None:
            os.makedirs(baseline_store)
        fast_process = "exec.worker" in sites
        baseline_summary, result.baseline_elapsed_s = _scan_once(
            frames, kwargs=kwargs, store_dir=baseline_store, workers=workers,
            fast_process=fast_process)
        baseline_docs = _per_frame_docs(baseline_summary.report)

        # ---- armed run ------------------------------------------------
        armed_kwargs = dict(kwargs)
        if deadline_s is not None:
            armed_kwargs["deadline_s"] = deadline_s
        if frame_deadline_s is not None:
            armed_kwargs["frame_deadline_s"] = frame_deadline_s
        armed_store = os.path.join(tmp, "armed") if needs_store else None
        if armed_store is not None:
            os.makedirs(armed_store)
        arm_plan(plan)
        account_before = fabric().account.snapshot()
        try:
            summary, result.elapsed_s = _scan_once(
                frames, kwargs=armed_kwargs, store_dir=armed_store,
                workers=workers, fast_process=fast_process)
        finally:
            # The harness-wide delta, not the report's: it also catches
            # faults fired outside validate_frames (cycle clock skew,
            # store opens) so nothing escapes the accounting check.
            delta = fabric().account.delta_since(account_before)
            disarm()

    report = summary.report
    result.checks = len(report)
    degradation = DegradationStats.from_delta(delta, plan=plan.name)
    result.degradation = degradation

    # 1. terminates within the deadline budget (plus scheduling grace:
    #    deadlines are soft -- enforced at stage boundaries, not killed).
    if deadline_s is not None:
        budget = deadline_s * 1.5 + 5.0
        if result.elapsed_s > budget:
            result.failures.append(
                f"cycle ran {result.elapsed_s:.2f}s against a "
                f"{deadline_s:.2f}s deadline (budget {budget:.2f}s)")

    # 2. schema-valid report with the degraded marker iff degraded.
    #    The marker follows the *report's* degradation (what happened
    #    inside the validation run), not the harness-wide delta -- cycle
    #    clock skew degrades the cycle timestamp, not the verdicts.
    try:
        doc = json.loads(render_json(report))
    except ValueError as error:
        result.failures.append(f"report JSON does not parse: {error}")
        doc = {}
    for key in ("target", "summary", "results"):
        if key not in doc:
            result.failures.append(f"report JSON missing {key!r}")
    report_degradation = report.degradation
    report_degraded = (report_degradation is not None
                       and report_degradation.degraded)
    if report_degraded != bool(doc.get("degraded", False)):
        result.failures.append(
            f"degraded marker mismatch: run degraded={report_degraded}, "
            f"report says {doc.get('degraded', False)}")
    if report_degradation is None:
        result.failures.append(
            "no DegradationStats attached under an armed plan")
        return result

    # 3. blast radius: frames the plan could not touch are byte-identical.
    affected = _affected_frames(plan, degradation, frame_paths)
    if affected:
        # Composite rules carry the run-level target and may span any
        # affected frame, so they ride along with the blast radius.
        affected.add(report.target)
    result.affected_frames = sorted(affected)
    armed_docs = _per_frame_docs(report)
    if set(armed_docs) != set(baseline_docs):
        result.failures.append(
            "armed run scanned a different frame set than the baseline")
    for target, doc_json in baseline_docs.items():
        if target in affected:
            continue
        if armed_docs.get(target) != doc_json:
            result.unexpected_diffs.append(target)
    if result.unexpected_diffs:
        result.failures.append(
            f"{len(result.unexpected_diffs)} unaffected frame(s) changed: "
            + ", ".join(sorted(result.unexpected_diffs)[:5]))

    # 4. accounting: every injected fault is absorbed somewhere.
    if degradation.total_injected != degradation.total_absorbed:
        result.failures.append(
            f"unaccounted faults: {degradation.total_injected} injected "
            f"vs {degradation.total_absorbed} absorbed "
            f"({degradation.faults_injected} / "
            f"{degradation.faults_absorbed})")
    for site, count in degradation.faults_injected.items():
        if degradation.faults_absorbed.get(site, 0) != count:
            result.failures.append(
                f"site {site}: {count} injected, "
                f"{degradation.faults_absorbed.get(site, 0)} absorbed")
    # The fabric account must be back to rest after disarm: nothing from
    # this run may leak into later cycles.
    if fabric().armed:
        result.failures.append("fabric still armed after the run")
    return result
