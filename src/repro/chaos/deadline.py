"""Cycle and frame soft deadlines with a watchdog thread.

A :class:`RunDeadline` bounds one validation cycle.  The cycle deadline
is enforced two ways: passively (every ``should_cancel`` check compares
the monotonic clock) and actively (a watchdog thread trips the expiry
event the moment the budget runs out, so a cycle stuck inside one long
evaluation is flagged without waiting for the next check).  The frame
deadline is purely passive -- it is checked at stage boundaries inside
``_evaluate_frame_rules``.

Deadlines are *soft*: nothing is killed.  An over-deadline frame is
cancelled at the next rule boundary, its remaining rules reported as
quarantined ERROR verdicts, and the cycle runs to completion -- a
partial, accounted report always beats no report.
"""

from __future__ import annotations

import logging
import threading
import time

log = logging.getLogger("repro.chaos")


class RunDeadline:
    """Soft deadlines for one validation cycle.

    Passive checks work in any process (worker processes enforce the
    frame deadline without a watchdog); :meth:`start`/:meth:`stop`
    bracket the parent-side watchdog thread.
    """

    def __init__(self, *, cycle_s: float | None = None,
                 frame_s: float | None = None) -> None:
        self.cycle_s = cycle_s
        self.frame_s = frame_s
        self.started = time.monotonic()
        self._expired = threading.Event()
        self._cancel = threading.Event()
        self._watchdog: threading.Thread | None = None

    # -- watchdog --------------------------------------------------------

    def start(self) -> "RunDeadline":
        """Reset the clock and launch the watchdog (if a cycle budget is set)."""
        self.started = time.monotonic()
        if self.cycle_s is not None and self._watchdog is None:
            self._watchdog = threading.Thread(
                target=self._watch, name="repro-deadline-watchdog", daemon=True,
            )
            self._watchdog.start()
        return self

    def stop(self) -> None:
        self._cancel.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=1.0)
            self._watchdog = None

    def _watch(self) -> None:
        if not self._cancel.wait(timeout=self.cycle_s):
            self._expired.set()
            log.warning(
                "cycle deadline of %.1fs exceeded; remaining frames will be "
                "cancelled at the next stage boundary", self.cycle_s,
            )

    # -- checks ----------------------------------------------------------

    @property
    def cycle_expired(self) -> bool:
        if self._expired.is_set():
            return True
        if self.cycle_s is not None and (
                time.monotonic() - self.started > self.cycle_s):
            self._expired.set()
            return True
        return False

    def frame_expired(self, frame_started: float) -> bool:
        return self.frame_s is not None and (
            time.monotonic() - frame_started > self.frame_s)

    def should_cancel(self, frame_started: float) -> bool:
        return self.cycle_expired or self.frame_expired(frame_started)

    def remaining_s(self) -> float | None:
        """Seconds left in the cycle budget (None when unbounded)."""
        if self.cycle_s is None:
            return None
        return max(0.0, self.cycle_s - (time.monotonic() - self.started))
