"""Shipped, named fault plans.

Each plan targets one injection site with deterministic (probability
1.0, match-scoped, count-capped) rules, so a ``repro chaos`` run under
it is exactly reproducible: the same faults fire on the same keys every
run, which is what lets the runner assert that unaffected frames are
byte-identical to a fault-free cycle.

``resolve_plan`` accepts either a shipped name or a path to a JSON plan
file (anything containing a path separator or ending in ``.json``).
"""

from __future__ import annotations

import os

from repro.chaos.fabric import ChaosPlanError, FaultPlan

#: The shipped plan documents.  Matches are scoped to files the demo
#: fleet actually contains, so every plan demonstrably fires there.
NAMED_PLANS: dict[str, dict] = {
    # Unreadable file: every read of nginx.conf fails the way a torn
    # bind-mount would.  Absorbed as a per-file parse error; frames
    # without that file are untouched.
    "fs-error": {
        "name": "fs-error",
        "seed": 101,
        "rules": [
            {"site": "fs.read", "match": "*/etc/nginx/nginx.conf"},
        ],
    },
    # Hung/crashing parser on mysql configs: the lens raises instead of
    # returning a tree.  Absorbed as a parse error on that file.
    "parser-crash": {
        "name": "parser-crash",
        "seed": 211,
        "rules": [
            {"site": "lens.parse", "match": "*/etc/mysql/my.cnf"},
        ],
    },
    # OOM-killed worker: shard 0's process dies without unwinding; the
    # backend respawns and re-evaluates, so the report is unchanged.
    "worker-kill": {
        "name": "worker-kill",
        "seed": 307,
        "rules": [
            {"site": "exec.worker", "match": "shard-0",
             "mode": "exit", "count": 1},
        ],
    },
    # Corrupt artifact store: the first store operation reports a
    # malformed database; the guard quarantines the file and reopens
    # cold.  Verdicts never depend on the store, so no frame changes.
    "store-corruption": {
        "name": "store-corruption",
        "seed": 401,
        "rules": [
            {"site": "store.sqlite", "match": "*", "count": 1},
        ],
    },
    # A wall clock two minutes fast: cycle and shard start stamps skew,
    # exercising every duration computation.  Fully absorbed.
    "clock-skew": {
        "name": "clock-skew",
        "seed": 503,
        "rules": [
            {"site": "clock.skew", "match": "*",
             "mode": "skew", "skew_s": 120.0},
        ],
    },
    # Slow rules: injected latency on one entity's evaluations, for
    # exercising frame deadlines without a pathological workload.
    "slow-rules": {
        "name": "slow-rules",
        "seed": 601,
        "rules": [
            {"site": "rule.eval", "match": "*", "mode": "delay",
             "delay_s": 0.02, "probability": 0.25},
        ],
    },
    # Every site armed, nothing ever fires: the disarmed-overhead bench
    # gate uses this to price the per-site dispatch beyond the armed
    # flag itself.
    "null": {
        "name": "null",
        "seed": 0,
        "rules": [
            {"site": "fs.read", "probability": 0.0},
            {"site": "lens.parse", "probability": 0.0},
            {"site": "rule.eval", "probability": 0.0},
            {"site": "exec.worker", "probability": 0.0},
            {"site": "store.sqlite", "probability": 0.0},
            {"site": "webhook.send", "probability": 0.0},
            {"site": "clock.skew", "probability": 0.0, "mode": "skew"},
        ],
    },
}


def plan_names() -> list[str]:
    return sorted(NAMED_PLANS)


def named_plan(name: str) -> FaultPlan:
    try:
        doc = NAMED_PLANS[name]
    except KeyError:
        raise ChaosPlanError(
            f"unknown fault plan {name!r}; shipped plans: "
            + ", ".join(plan_names())
        ) from None
    return FaultPlan.from_dict(doc)


def resolve_plan(name_or_path: str) -> FaultPlan:
    """A shipped plan by name, or a plan document by path."""
    looks_like_path = (
        os.sep in name_or_path
        or name_or_path.endswith(".json")
        or os.path.exists(name_or_path)
    )
    if looks_like_path:
        return FaultPlan.from_file(name_or_path)
    return named_plan(name_or_path)
