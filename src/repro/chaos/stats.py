"""Degradation accounting surfaced on reports and fleet summaries.

A cycle that absorbed faults, cancelled over-deadline frames, or
quarantined a corrupt store still completes and still emits a report --
but downstream consumers must never mistake that partial cycle for a
clean one.  :class:`DegradationStats` is the per-cycle ledger: attached
to ``ValidationReport.degradation`` / ``FleetSummary.degradation``,
rendered under ``--stage-timings``, exported as the ``repro_chaos_*`` /
``repro_degraded_*`` metric families, and the source of the
``degraded: true`` marker in JSON/JUnit output.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DegradationStats:
    """What one cycle absorbed instead of failing."""

    #: Faults the fabric injected, by site.
    faults_injected: dict[str, int] = field(default_factory=dict)
    #: Injected faults the production error paths absorbed, by site.
    faults_absorbed: dict[str, int] = field(default_factory=dict)
    #: Frames with at least one deadline-cancelled rule.
    frames_quarantined: int = 0
    #: Rule evaluations cancelled at a deadline boundary.
    deadline_cancellations: int = 0
    #: Corrupt stores moved aside and reopened cold.
    stores_quarantined: int = 0
    #: Name of the armed fault plan (None when only deadlines fired).
    plan: str | None = None
    #: (site, key) pairs that fired, for fault attribution.
    fired: list[tuple[str, str]] = field(default_factory=list, repr=False)

    @classmethod
    def from_delta(cls, delta: dict, *, plan: str | None = None
                   ) -> "DegradationStats":
        return cls(
            faults_injected=dict(delta.get("injected", {})),
            faults_absorbed=dict(delta.get("absorbed", {})),
            frames_quarantined=delta.get("frames_quarantined", 0),
            deadline_cancellations=delta.get("deadline_cancellations", 0),
            stores_quarantined=delta.get("stores_quarantined", 0),
            plan=plan,
            fired=[tuple(item) for item in delta.get("fired", ())],
        )

    @property
    def total_injected(self) -> int:
        return sum(self.faults_injected.values())

    @property
    def total_absorbed(self) -> int:
        return sum(self.faults_absorbed.values())

    @property
    def degraded(self) -> bool:
        """True when this cycle was anything but clean."""
        return bool(
            self.total_injected or self.total_absorbed
            or self.frames_quarantined or self.deadline_cancellations
            or self.stores_quarantined
        )

    def to_dict(self) -> dict:
        return {
            "plan": self.plan,
            "faults_injected": dict(sorted(self.faults_injected.items())),
            "faults_absorbed": dict(sorted(self.faults_absorbed.items())),
            "frames_quarantined": self.frames_quarantined,
            "deadline_cancellations": self.deadline_cancellations,
            "stores_quarantined": self.stores_quarantined,
        }

    def render(self) -> str:
        """Human-readable block for ``--stage-timings`` output."""
        lines = ["degradation:"]
        if self.plan:
            lines.append(f"  fault plan        : {self.plan}")
        lines.append(f"  faults injected   : {self.total_injected}"
                     + _by_site(self.faults_injected))
        lines.append(f"  faults absorbed   : {self.total_absorbed}"
                     + _by_site(self.faults_absorbed))
        lines.append(f"  frames quarantined: {self.frames_quarantined}")
        lines.append(f"  deadline cancels  : {self.deadline_cancellations}")
        lines.append(f"  stores quarantined: {self.stores_quarantined}")
        return "\n".join(lines)


def _by_site(counts: dict[str, int]) -> str:
    if not counts:
        return ""
    parts = ", ".join(f"{site}={n}" for site, n in sorted(counts.items()))
    return f"  ({parts})"
