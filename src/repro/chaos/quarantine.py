"""Shared sqlite quarantine-and-rebuild guard.

Every persistent store in the scanner (artifact store, history store,
and the VerdictStore's JSON tier) can meet a corrupt file: a torn
write, a disk error, or an injected ``store.sqlite`` fault.  The wrong
response is either crashing the cycle or silently disabling the store
for the rest of the process.  This module implements the uniform middle
path: move the bad database aside (``<path>.quarantined.<ts>``, with
its ``-wal``/``-shm`` siblings), count it, and let the caller reopen
cold.  The quarantined files are kept for post-mortem and uploaded as
CI artifacts by the chaos smoke job.
"""

from __future__ import annotations

import itertools
import logging
import os
import sqlite3
import time

from repro.chaos.fabric import _CHAOS

log = logging.getLogger("repro.chaos")

#: Substrings of sqlite error messages that indicate a corrupt database
#: file (as opposed to a transient lock or I/O hiccup).
_CORRUPTION_SIGNS = (
    "malformed",
    "not a database",
    "corrupt",
)

_seq = itertools.count()


def is_corruption(error: BaseException) -> bool:
    """True when the error means the database *file* is bad.

    Transient operational errors (locked, busy) are not corruption and
    must keep their existing retry/disable handling.
    """
    if getattr(error, "chaos_site", None) == "store.sqlite":
        return True
    if not isinstance(error, (sqlite3.Error, OSError, ValueError)):
        return False
    message = str(error).lower()
    return any(sign in message for sign in _CORRUPTION_SIGNS)


def quarantine_database(path: str, *, reason: str = "") -> str | None:
    """Move a corrupt database (and WAL/SHM siblings) aside.

    Returns the quarantine path, or ``None`` when nothing was on disk
    (an in-memory or never-written store).  Always counts against the
    process's degradation account, so a quarantine shows up in
    ``DegradationStats`` whether or not a fault plan caused it.
    """
    _CHAOS.account.note_store_quarantined()
    if not path or path == ":memory:" or not os.path.exists(path):
        log.warning("store %s corrupt (%s); rebuilding in place", path, reason)
        return None
    destination = f"{path}.quarantined.{int(time.time())}.{next(_seq)}"
    try:
        os.replace(path, destination)
        for suffix in ("-wal", "-shm"):
            sibling = path + suffix
            if os.path.exists(sibling):
                os.replace(sibling, destination + suffix)
    except OSError as exc:
        log.warning("could not quarantine corrupt store %s: %s", path, exc)
        return None
    log.warning("store %s corrupt (%s); quarantined to %s and reopening cold",
                path, reason, destination)
    return destination
