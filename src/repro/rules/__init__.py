"""Shipped CVL rule packs: the 11 targets of paper Table 1.

============== =========================================
Applications    apache, nginx, hadoop, mysql
System services audit, fstab, sshd, sysctl, modprobe
Cloud services  openstack, docker
============== =========================================

Checklist alignment follows the paper: system services and Docker carry
CIS tags; apache/nginx/hadoop carry OWASP/HIPAA/PCI tags; openstack
carries OSSG tags.

Helpers here build ready-to-use validators from the packaged data::

    from repro.rules import load_builtin_validator
    validator = load_builtin_validator()
    report = validator.validate_entity(host)
"""

from __future__ import annotations

from importlib import resources

from repro.engine.engine import ConfigValidator

#: Paper Table 1, verbatim.
TABLE1_TARGETS = {
    "Applications": ["apache", "nginx", "hadoop", "mysql"],
    "System services": ["audit", "fstab", "sshd", "sysctl", "modprobe"],
    "Cloud services": ["openstack", "docker"],
}

#: The Ubuntu "system services" targets used for the Table 2 comparison.
SYSTEM_SERVICE_TARGETS = ["audit", "fstab", "sshd", "sysctl", "modprobe"]

#: Packs shipped beyond the paper's Table 1 snapshot.
EXTENSION_TARGETS = ["accounts", "kubernetes"]


def builtin_resolver(path: str) -> str:
    """Read a packaged rule file (``component_configs/nginx.yaml``...)."""
    package = resources.files(__name__)
    return (package / path).read_text(encoding="utf-8")


def builtin_manifest_text() -> str:
    """The packaged manifest covering all 11 targets."""
    return builtin_resolver("manifest.yaml")


def load_builtin_validator(
    *, only: list[str] | None = None, **validator_kwargs
) -> ConfigValidator:
    """A :class:`ConfigValidator` loaded with the shipped packs.

    ``only`` restricts the validator to a subset of target names (e.g.
    ``SYSTEM_SERVICE_TARGETS`` for the Table 2 benchmark).
    """
    validator = ConfigValidator(resolver=builtin_resolver, **validator_kwargs)
    manifests = validator.add_manifest_text(
        builtin_manifest_text(), source="manifest.yaml"
    )
    if only is not None:
        wanted = set(only)
        for manifest in manifests:
            if manifest.entity not in wanted:
                manifest.enabled = False
    return validator


def inventory() -> dict[str, int]:
    """Rule counts per target (drives the Table 1 reproduction)."""
    validator = load_builtin_validator()
    counts: dict[str, int] = {}
    for manifest in validator.manifests():
        counts[manifest.entity] = len(validator.ruleset_for(manifest).rules)
    return counts


def total_rules() -> int:
    return sum(inventory().values())
