"""Loading rule packs from a directory on disk.

The packaged rules ship inside the wheel; real deployments keep their
packs (and deployment-specific override layers) in a git repository and
point the validator at a checkout::

    rules-repo/
      manifest.yaml
      component_configs/
        nginx.yaml
        site_overrides.yaml     # parent_cvl_file: nginx.yaml

:func:`directory_resolver` resolves ``cvl_file`` / ``parent_cvl_file``
references relative to that checkout, refusing path escapes;
:func:`load_validator_from_directory` builds a ready validator from it.
"""

from __future__ import annotations

import os

from repro.errors import EngineError
from repro.engine.engine import ConfigValidator, Resolver


def directory_resolver(base_dir: str) -> Resolver:
    """A resolver reading rule files relative to ``base_dir``.

    References may use subdirectories but not escape the base directory
    (``../../etc/shadow`` in a contributed pack must fail, not read).
    """
    base = os.path.abspath(base_dir)
    if not os.path.isdir(base):
        raise EngineError(f"rules directory {base_dir!r} does not exist")

    def resolve(path: str) -> str:
        target = os.path.abspath(os.path.join(base, path))
        if not (target == base or target.startswith(base + os.sep)):
            raise EngineError(
                f"rule file reference {path!r} escapes the rules directory"
            )
        try:
            with open(target, "r", encoding="utf-8") as handle:
                return handle.read()
        except FileNotFoundError:
            raise EngineError(
                f"rule file {path!r} not found under {base_dir!r}"
            ) from None

    return resolve


def load_validator_from_directory(
    directory: str,
    *,
    manifest_file: str = "manifest.yaml",
    **validator_kwargs,
) -> ConfigValidator:
    """Build a validator from an on-disk rules repository."""
    resolver = directory_resolver(directory)
    validator = ConfigValidator(resolver=resolver, **validator_kwargs)
    validator.add_manifest_text(resolver(manifest_file), source=manifest_file)
    return validator
