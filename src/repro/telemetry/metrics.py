"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Zero-dependency reimplementation of the Prometheus client-library data
model, scoped to what the scan cycle needs:

* every instrument is a *family* keyed by metric name with a fixed label
  schema; children are addressed by label values
  (``counter.inc(verdict="compliant")``);
* histograms use fixed upper bounds chosen at creation (cumulative
  bucket counts, ``sum``/``count``/``min``/``max``);
* a registry owns the families and renders the Prometheus text
  exposition format (via :mod:`repro.telemetry.export`).

All instruments are thread-safe (one lock per family; the hot path is a
dict upsert).  ``register_collector`` lets pull-style sources (the parse
cache) refresh their samples right before a scrape instead of paying for
instrumentation on every cache operation.

:class:`NoopMetricsRegistry` hands out shared do-nothing instruments for
the disabled-telemetry path.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Iterator

#: Default latency buckets (seconds): 100us .. 10s, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelValues = tuple[str, ...]


class _Family:
    """Shared bookkeeping for one named metric family."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "",
                 labels: tuple[str, ...] = ()):
        self.name = name
        self.help = help_text
        self.label_names = tuple(labels)
        self._lock = threading.Lock()

    def _key(self, labels: dict[str, str]) -> LabelValues:
        names = self.label_names
        if not labels and not names:         # unlabeled fast path
            return ()
        if len(labels) == len(names):
            try:                             # matching schema fast path
                return tuple([str(labels[name]) for name in names])
            except KeyError:
                pass
        raise ValueError(
            f"metric {self.name!r} takes labels {names}, "
            f"got {tuple(sorted(labels))}"
        )


class Counter(_Family):
    """Monotonically increasing value per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "",
                 labels: tuple[str, ...] = ()):
        super().__init__(name, help_text, labels)
        self._values: dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set(self, value: float, **labels: str) -> None:
        """Overwrite the sample (used by pull-style collectors that
        mirror an external monotonic counter, e.g. cache stats)."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def remove(self, **labels: str) -> None:
        """Drop one labeled sample (no-op when absent).

        Long-running exporters use this for state-shaped gauges -- e.g.
        the monitor's per-rule flap gauge -- so a rule that stops
        flapping disappears from the exposition instead of lingering
        at a stale value forever.
        """
        key = self._key(labels)
        with self._lock:
            self._values.pop(key, None)

    def clear(self) -> None:
        """Drop every sample of the family (label schema stays)."""
        with self._lock:
            self._values.clear()

    def samples(self) -> list[tuple[LabelValues, float]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge(Counter):
    """A value that can go up and down."""

    kind = "gauge"

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)


class _HistogramChild:
    __slots__ = ("bucket_counts", "total", "count", "min", "max")

    def __init__(self, nbuckets: int):
        self.bucket_counts = [0] * nbuckets   # per-bucket, not cumulative
        self.total = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram(_Family):
    """Fixed-bucket latency/size distribution per label set."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 labels: tuple[str, ...] = (),
                 buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, help_text, labels)
        self.buckets = tuple(sorted(buckets))
        self._children: dict[LabelValues, _HistogramChild] = {}

    def _child(self, key: LabelValues) -> _HistogramChild:
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _HistogramChild(len(self.buckets) + 1)
        return child

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            child = self._child(key)
            child.bucket_counts[index] += 1
            child.total += value
            child.count += 1
            if value < child.min:
                child.min = value
            if value > child.max:
                child.max = value

    def observe_batch(self, values, **labels: str) -> None:
        """Observe many values under one lock, with exact buckets.

        The per-frame flush path: the engine collects a frame's rule
        durations locally and folds them in with a single acquisition.
        Sorting once turns bucketing into one ``bisect`` per *bucket*
        (cumulative count below each bound) instead of one per value,
        so the cost is dominated by the C-level sort.
        """
        key = self._key(labels)
        ordered = sorted(values)
        if not ordered:
            return
        bisect_right = bisect.bisect_right
        with self._lock:
            child = self._child(key)
            counts = child.bucket_counts
            below = 0
            for index, bound in enumerate(self.buckets):
                at_or_below = bisect_right(ordered, bound)
                if at_or_below != below:
                    counts[index] += at_or_below - below
                    below = at_or_below
            counts[-1] += len(ordered) - below
            child.total += sum(ordered)
            child.count += len(ordered)
            if ordered[0] < child.min:
                child.min = ordered[0]
            if ordered[-1] > child.max:
                child.max = ordered[-1]

    def observe_aggregate(self, total: float, count: int,
                          min_value: float | None = None,
                          max_value: float | None = None,
                          **labels: str) -> None:
        """Fold in ``count`` observations summing to ``total`` at once
        (merging another accumulator).  Bucket credit goes to the mean
        value -- an approximation, but exact for ``sum``/``count`` and,
        when ``min_value``/``max_value`` are given, for the extremes.
        """
        if count <= 0:
            return
        key = self._key(labels)
        mean = total / count
        index = bisect.bisect_left(self.buckets, mean)
        low = mean if min_value is None else min_value
        high = mean if max_value is None else max_value
        with self._lock:
            child = self._child(key)
            child.bucket_counts[index] += count
            child.total += total
            child.count += count
            if low < child.min:
                child.min = low
            if high > child.max:
                child.max = high

    def merge_child(self, label_values, bucket_counts, total: float,
                    count: int, min_value: float, max_value: float) -> None:
        """Fold another accumulator's exact per-bucket state into this
        family (the cross-process metric merge: worker histograms travel
        as ``(bucket_counts, sum, count, min, max)`` deltas).  Falls
        back to the mean-bucket approximation of
        :meth:`observe_aggregate` when the bucket schema differs.
        """
        if count <= 0:
            return
        key = tuple(str(value) for value in label_values)
        if len(bucket_counts) != len(self.buckets) + 1:
            self.observe_aggregate(total, count, min_value, max_value,
                                   **dict(zip(self.label_names, key)))
            return
        with self._lock:
            child = self._child(key)
            counts = child.bucket_counts
            for index, value in enumerate(bucket_counts):
                counts[index] += value
            child.total += total
            child.count += count
            if min_value < child.min:
                child.min = min_value
            if max_value > child.max:
                child.max = max_value

    def clear(self) -> None:
        """Drop every child of the family (label schema stays).

        Worker processes drain their push-style families into a shard's
        telemetry capture and clear them, so each capture carries exact
        per-shard deltas with no cross-shard double counting.
        """
        with self._lock:
            self._children.clear()

    # ---- accessors --------------------------------------------------------

    def _snap(self, labels: dict[str, str]) -> _HistogramChild | None:
        key = self._key(labels)
        with self._lock:
            return self._children.get(key)

    def sum(self, **labels: str) -> float:
        child = self._snap(labels)
        return child.total if child else 0.0

    def count(self, **labels: str) -> int:
        child = self._snap(labels)
        return child.count if child else 0

    def min(self, **labels: str) -> float:
        child = self._snap(labels)
        return child.min if child and child.count else 0.0

    def max(self, **labels: str) -> float:
        child = self._snap(labels)
        return child.max if child and child.count else 0.0

    def mean(self, **labels: str) -> float:
        child = self._snap(labels)
        return child.total / child.count if child and child.count else 0.0

    def samples(self) -> list[tuple[LabelValues, _HistogramChild]]:
        with self._lock:
            # Children are mutated in place; copy the numeric state.
            out = []
            for key, child in sorted(self._children.items()):
                snap = _HistogramChild(len(self.buckets) + 1)
                snap.bucket_counts = list(child.bucket_counts)
                snap.total, snap.count = child.total, child.count
                snap.min, snap.max = child.min, child.max
                out.append((key, snap))
            return out


class MetricsRegistry:
    """Owns metric families and pull-style collectors."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: dict[str, Callable[[], None]] = {}

    def _get_or_create(self, cls, name: str, help_text: str,
                       labels: tuple[str, ...], **kwargs) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help_text, labels, **kwargs)
                self._families[name] = family
                return family
        if not isinstance(family, cls) or family.label_names != tuple(labels):
            raise ValueError(
                f"metric {name!r} re-registered with a different "
                f"type or label schema"
            )
        return family

    def counter(self, name: str, help_text: str = "",
                labels: tuple[str, ...] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: tuple[str, ...] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labels, buckets=buckets
        )

    def register_collector(self, key: str, collect: Callable[[], None]) -> None:
        """Register (or replace) a pre-scrape refresh callback.

        Keyed so re-attaching the same source (e.g. the same parse
        cache) is idempotent rather than duplicating work.
        """
        with self._lock:
            self._collectors[key] = collect

    def collect(self) -> None:
        """Run every registered collector (called before rendering)."""
        with self._lock:
            collectors = list(self._collectors.values())
        for collect in collectors:
            collect()

    def families(self) -> Iterator[_Family]:
        with self._lock:
            ordered = sorted(self._families.items())
        for _name, family in ordered:
            yield family

    def render(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        from repro.telemetry.export import render_prometheus

        return render_prometheus(self)


class _NoopInstrument:
    """One object standing in for disabled counters/gauges/histograms."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels) -> None: ...
    def dec(self, amount: float = 1.0, **labels) -> None: ...
    def set(self, value: float, **labels) -> None: ...
    def remove(self, **labels) -> None: ...
    def clear(self) -> None: ...
    def observe(self, value: float, **labels) -> None: ...
    def observe_batch(self, values, **labels) -> None: ...
    def observe_aggregate(self, total, count, min_value=None,
                          max_value=None, **labels) -> None: ...
    def merge_child(self, label_values, bucket_counts, total, count,
                    min_value, max_value) -> None: ...
    def value(self, **labels) -> float:
        return 0.0
    def sum(self, **labels) -> float:
        return 0.0
    def count(self, **labels) -> int:
        return 0
    def samples(self) -> list:
        return []


_NOOP_INSTRUMENT = _NoopInstrument()


class NoopMetricsRegistry:
    """Registry whose instruments do nothing (disabled telemetry)."""

    enabled = False

    def counter(self, name, help_text="", labels=()):
        return _NOOP_INSTRUMENT

    def gauge(self, name, help_text="", labels=()):
        return _NOOP_INSTRUMENT

    def histogram(self, name, help_text="", labels=(), buckets=()):
        return _NOOP_INSTRUMENT

    def register_collector(self, key, collect) -> None:
        return None

    def collect(self) -> None:
        return None

    def families(self):
        return iter(())

    def render(self) -> str:
        return ""


NOOP_METRICS = NoopMetricsRegistry()
