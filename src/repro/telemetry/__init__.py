"""Telemetry for the scan cycle: spans, metrics, profiling, logging.

One :class:`Telemetry` object bundles the three collectors the pipeline
threads through itself:

* :attr:`Telemetry.spans`   -- hierarchical trace spans
  (``scan_cycle`` -> ``frame`` -> stage -> ``rule``/``parse``),
  exportable as Chrome ``trace_event`` JSON;
* :attr:`Telemetry.metrics` -- process-wide counters / gauges /
  histograms with Prometheus text exposition;
* :attr:`Telemetry.profiler`-- per-rule / per-lens hot-and-erroring
  rankings.

Disabled telemetry (the default everywhere) swaps in shared no-op
collectors, so instrumented code paths cost one attribute check::

    from repro.telemetry import Telemetry
    telemetry = Telemetry()                      # enabled
    validator = load_builtin_validator(telemetry=telemetry)
    ...
    write_chrome_trace(telemetry.spans, "trace.json")
    write_metrics(telemetry.metrics, "metrics.prom")

Structured logging is orthogonal (stdlib ``logging`` under the
``repro`` namespace); see :mod:`repro.telemetry.logs`.
"""

from __future__ import annotations

from repro.telemetry.capture import (
    FamilyDelta,
    TelemetryCapture,
    capture_telemetry,
    merge_metrics,
    merge_shard_capture,
    reset_capture,
)
from repro.telemetry.logs import (
    JsonLogFormatter,
    PlainLogFormatter,
    configure_logging,
    get_logger,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP_METRICS,
    NoopMetricsRegistry,
)
from repro.telemetry.profiler import NOOP_PROFILER, NoopProfiler, ProfileEntry, RuleProfiler
from repro.telemetry.spans import NOOP_SPANS, NoopSpanCollector, Span, SpanCollector


class Telemetry:
    """Bundle of span/metric/profile collectors threaded through a scan."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        if enabled:
            self.spans: SpanCollector = SpanCollector()
            self.metrics: MetricsRegistry = MetricsRegistry()
            self.profiler: RuleProfiler = RuleProfiler()
        else:
            self.spans = NOOP_SPANS            # type: ignore[assignment]
            self.metrics = NOOP_METRICS        # type: ignore[assignment]
            self.profiler = NOOP_PROFILER      # type: ignore[assignment]


#: Shared disabled bundle -- what every pipeline component defaults to.
#: Safe to share: the no-op collectors hold no state.
DISABLED = Telemetry(enabled=False)

__all__ = [
    "Counter",
    "DISABLED",
    "FamilyDelta",
    "Gauge",
    "Histogram",
    "JsonLogFormatter",
    "MetricsRegistry",
    "NoopMetricsRegistry",
    "NoopProfiler",
    "NoopSpanCollector",
    "PlainLogFormatter",
    "ProfileEntry",
    "RuleProfiler",
    "Span",
    "SpanCollector",
    "Telemetry",
    "TelemetryCapture",
    "capture_telemetry",
    "configure_logging",
    "get_logger",
    "merge_metrics",
    "merge_shard_capture",
    "reset_capture",
]
