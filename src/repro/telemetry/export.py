"""Exporters: Chrome ``trace_event`` JSON, Prometheus text exposition,
and a minimal one-shot HTTP scrape endpoint.

Both exporters are offline-friendly by design: a fleet scan writes
``trace.json`` / ``metrics.prom`` files that standard tooling opens
directly (``chrome://tracing`` / Perfetto for traces, ``promtool`` or a
Pushgateway-style importer for metrics) -- no agent or sidecar needed.
"""

from __future__ import annotations

import json
import math
import os
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer, ThreadingHTTPServer

from repro.telemetry.metrics import Counter, Gauge, Histogram
from repro.telemetry.spans import Span, SpanCollector

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


# ---- Chrome trace_event ------------------------------------------------------


def to_chrome_trace(collector: SpanCollector) -> dict:
    """Spans -> Chrome ``trace_event`` JSON object format.

    Every span becomes one complete ("X") event; timestamps are
    microseconds relative to the collector's origin, so the earliest
    span sits near t=0 in the viewer.  Thread ids are remapped to small
    stable integers per process and labelled with metadata events so
    Perfetto shows ``worker-0``, ``worker-1``, ... lanes instead of raw
    ids.  Spans merged from worker processes carry their originating
    pid (:attr:`~repro.telemetry.spans.Span.pid`) and land on distinct
    process lanes, named and sorted so the parent process lists first.
    """
    spans = sorted(collector.finished(), key=lambda s: (s.start_s, s.span_id))
    own_pid = os.getpid()
    #: per-process thread-id remapping: pid -> {thread_id: small tid}
    lanes: dict[int, dict[int, int]] = {}
    events: list[dict] = []
    for span in spans:
        pid = span.pid if span.pid is not None else own_pid
        tids = lanes.setdefault(pid, {})
        tid = tids.setdefault(span.thread_id, len(tids))
        args = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": round(span.start_s * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    meta: list[dict] = []
    worker_ordinal = 0
    for pid in sorted(lanes, key=lambda p: (p != own_pid, p)):
        if pid == own_pid:
            process_name, sort_index = "repro (parent)", 0
        else:
            worker_ordinal += 1
            process_name = f"repro worker (pid {pid})"
            sort_index = worker_ordinal
        meta.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        })
        meta.append({
            "name": "process_sort_index",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"sort_index": sort_index},
        })
        meta.extend(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"worker-{tid}"},
            }
            for tid in sorted(lanes[pid].values())
        )
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(collector: SpanCollector, path: str) -> int:
    """Write the trace file; returns the number of span events."""
    payload = to_chrome_trace(collector)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    return sum(1 for e in payload["traceEvents"] if e.get("ph") == "X")


# ---- Prometheus text exposition ----------------------------------------------


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(names: tuple[str, ...], values: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    pairs.extend(
        f'{name}="{_escape_label_value(value)}"' for name, value in extra
    )
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(registry) -> str:
    """Registry -> Prometheus text format (version 0.0.4)."""
    registry.collect()
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, Histogram):
            for values, child in family.samples():
                cumulative = 0
                for bound, bucket in zip(family.buckets,
                                         child.bucket_counts):
                    cumulative += bucket
                    labels = _format_labels(
                        family.label_names, values,
                        (("le", _format_value(bound)),),
                    )
                    lines.append(
                        f"{family.name}_bucket{labels} {cumulative}"
                    )
                cumulative += child.bucket_counts[-1]
                labels = _format_labels(
                    family.label_names, values, (("le", "+Inf"),)
                )
                lines.append(f"{family.name}_bucket{labels} {cumulative}")
                labels = _format_labels(family.label_names, values)
                lines.append(
                    f"{family.name}_sum{labels} "
                    f"{_format_value(child.total)}"
                )
                lines.append(f"{family.name}_count{labels} {child.count}")
        elif isinstance(family, (Counter, Gauge)):
            samples = family.samples()
            if not samples and not family.label_names:
                samples = [((), 0.0)]
            for values, value in samples:
                labels = _format_labels(family.label_names, values)
                lines.append(
                    f"{family.name}{labels} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def write_metrics(registry, path: str) -> int:
    """Write the exposition file; returns the number of sample lines."""
    text = render_prometheus(registry)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )


# ---- HTTP scrape endpoint ----------------------------------------------------

#: A route handler returns ``(status, content_type, body_bytes)``; it is
#: invoked per request, so bodies reflect live state at scrape time.
RouteHandler = "Callable[[], tuple[int, str, bytes]]"


def _make_handler(registry, routes=None):
    """Request handler serving ``/metrics`` plus optional extra routes.

    ``routes`` maps a path (e.g. ``"/status"``) to a zero-argument
    callable returning ``(status_code, content_type, body)``.  The
    monitor daemon uses this to add ``/healthz`` / ``/readyz`` /
    ``/status`` / ``/history`` next to the Prometheus exposition without
    a second server.
    """
    extra = dict(routes or {})

    class MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 (stdlib API name)
            path = self.path.split("?", 1)[0].rstrip("/") or "/metrics"
            if path == "/metrics":
                self._reply(
                    200,
                    PROMETHEUS_CONTENT_TYPE,
                    render_prometheus(registry).encode("utf-8"),
                )
                return
            handler = extra.get(path)
            if handler is None:
                known = ", ".join(sorted(["/metrics", *extra]))
                self.send_error(404, f"try one of: {known}")
                return
            try:
                status, content_type, body = handler()
            except Exception as exc:  # route bugs must not kill the server
                self._reply(
                    500, "text/plain; charset=utf-8",
                    f"internal error: {exc}".encode("utf-8"),
                )
                return
            self._reply(status, content_type, body)

        def _reply(self, status: int, content_type: str,
                   body: bytes) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, fmt, *args):  # silence per-request noise
            return None

    return MetricsHandler


def serve_metrics_once(registry, port: int, *,
                       host: str = "127.0.0.1") -> int:
    """Serve exactly one scrape of ``/metrics`` and return the bound port.

    One-shot by design: a CLI run blocks until a single ``curl`` /
    Prometheus probe collects the final numbers, then exits -- no
    lingering socket.  Pass ``port=0`` to bind an ephemeral port.

    Plain ``HTTPServer``, not the threading variant: ``handle_request``
    must finish writing the response before returning, because the
    caller is about to exit the process (a daemon handler thread would
    be killed mid-response).
    """
    server = HTTPServer((host, port), _make_handler(registry))
    try:
        bound = server.server_address[1]
        server.handle_request()
    finally:
        server.server_close()
    return bound


class MetricsServer:
    """Background scrape endpoint for long-running scan loops.

    Serves ``/metrics`` (plus any extra ``routes``) on a daemon thread
    until :meth:`close`; suits a resident
    :class:`~repro.engine.batch.BatchScanner` process scraped on an
    interval by a real Prometheus.  ``repro validate --metrics-port``
    keeps one of these alive for the duration of the run; ``repro
    monitor`` keeps one for the daemon's lifetime with the live
    ``/status`` / ``/history`` routes attached.
    """

    def __init__(self, registry, port: int = 0, *, host: str = "127.0.0.1",
                 routes=None):
        self._server = ThreadingHTTPServer(
            (host, port), _make_handler(registry, routes=routes)
        )
        self.port: int = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="metrics-server",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
