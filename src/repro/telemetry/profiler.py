"""Per-rule / per-lens profiling: where does a scan cycle spend its time?

The span collector answers "what happened when"; the profiler answers
the dashboard question "which rules and lenses are hot or broken",
aggregated across every evaluation of the process.  Keys are

* ``("rule", "<entity>/<rule name>")`` -- one rule evaluated anywhere in
  the fleet (per-entity and composite rules alike);
* ``("lens", "<parser name>")`` -- one lens or schema parser doing real
  work (cache misses only; hits never reach the parser).

Everything is thread-safe; recording is a dict upsert under one lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass
class ProfileEntry:
    """Aggregate cost of one rule or lens."""

    kind: str                 # "rule" | "lens"
    key: str
    calls: int = 0
    errors: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


class RuleProfiler:
    """Thread-safe accumulator of per-rule / per-lens costs."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: dict[tuple[str, str], ProfileEntry] = {}
        #: Whole-frame rule batches from :meth:`record_rules`; folded
        #: into ``_entries`` lazily, the first time anything reads them.
        self._pending: list[list] = []

    def record(self, kind: str, key: str, seconds: float,
               *, error: bool = False) -> None:
        with self._lock:
            entry = self._entries.get((kind, key))
            if entry is None:
                entry = self._entries[(kind, key)] = ProfileEntry(kind, key)
            entry.calls += 1
            entry.total_s += seconds
            if seconds > entry.max_s:
                entry.max_s = seconds
            if error:
                entry.errors += 1

    def record_batch(self, records) -> None:
        """Bulk :meth:`record`: ``records`` yields tuples of
        ``(kind, key, seconds, error)``; one lock acquisition total."""
        with self._lock:
            entries = self._entries
            for kind, key, seconds, error in records:
                entry = entries.get((kind, key))
                if entry is None:
                    entry = entries[(kind, key)] = ProfileEntry(kind, key)
                entry.calls += 1
                entry.total_s += seconds
                if seconds > entry.max_s:
                    entry.max_s = seconds
                if error:
                    entry.errors += 1

    def record_rules(self, records: list) -> None:
        """Defer one frame's rule profile in a single list append.

        ``records`` is a list of rule-result objects, each exposing
        ``rule.name``, ``entity``, ``verdict.value`` (``"error"`` for an
        errored evaluation), and ``duration_s``; the list MUST not be
        mutated afterwards.  Aggregation happens lazily when the
        profiler is read (:meth:`entries` and everything built on it),
        keeping the scan cycle's hot path to one append.
        """
        with self._lock:
            self._pending.append(records)

    def _drain_locked(self) -> None:
        """Fold pending rule batches into entries; caller holds lock."""
        if not self._pending:
            return
        entries = self._entries
        for records in self._pending:
            for result in records:
                key = f"{result.entity}/{result.rule.name}"
                entry = entries.get(("rule", key))
                if entry is None:
                    entry = entries[("rule", key)] = (
                        ProfileEntry("rule", key)
                    )
                entry.calls += 1
                seconds = result.duration_s
                entry.total_s += seconds
                if seconds > entry.max_s:
                    entry.max_s = seconds
                if result.verdict.value == "error":
                    entry.errors += 1
        self._pending.clear()

    def merge_entries(self, rows) -> None:
        """Fold already-aggregated entries into this profiler.

        ``rows`` yields ``(kind, key, calls, errors, total_s, max_s)``
        tuples -- the pickle-safe shape a worker process's shard capture
        carries -- so the parent profiler reports worker-evaluated rules
        exactly as if they had run in-process.
        """
        with self._lock:
            self._drain_locked()
            entries = self._entries
            for kind, key, calls, errors, total_s, max_s in rows:
                entry = entries.get((kind, key))
                if entry is None:
                    entry = entries[(kind, key)] = ProfileEntry(kind, key)
                entry.calls += calls
                entry.errors += errors
                entry.total_s += total_s
                if max_s > entry.max_s:
                    entry.max_s = max_s

    # ---- ranking ----------------------------------------------------------

    def entries(self, kind: str | None = None) -> list[ProfileEntry]:
        with self._lock:
            self._drain_locked()
            snapshot = [
                ProfileEntry(e.kind, e.key, e.calls, e.errors,
                             e.total_s, e.max_s)
                for e in self._entries.values()
            ]
        if kind is not None:
            snapshot = [e for e in snapshot if e.kind == kind]
        return snapshot

    def hottest(self, kind: str | None = None,
                count: int = 10) -> list[ProfileEntry]:
        """Top-N by total time spent (the capacity-planning view)."""
        return sorted(
            self.entries(kind), key=lambda e: (-e.total_s, e.key)
        )[:count]

    def most_erroring(self, kind: str | None = None,
                      count: int = 10) -> list[ProfileEntry]:
        """Top-N by error count (only entries that errored at all)."""
        flagged = [e for e in self.entries(kind) if e.errors]
        return sorted(flagged, key=lambda e: (-e.errors, e.key))[:count]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._pending.clear()

    def __len__(self) -> int:
        with self._lock:
            self._drain_locked()
            return len(self._entries)

    # ---- rendering --------------------------------------------------------

    def render(self, *, top: int = 10) -> str:
        """Aligned hot/error tables for CLI and fleet dashboards."""
        lines: list[str] = []
        for kind, title in (("rule", "hottest rules"),
                            ("lens", "hottest lenses")):
            ranked = [e for e in self.hottest(kind, top) if e.calls]
            if not ranked:
                continue
            lines.append(f"{title}:")
            lines.append(
                f"  {'total [ms]':>12}{'mean [ms]':>12}{'max [ms]':>12}"
                f"{'calls':>8}{'errors':>8}  name"
            )
            for entry in ranked:
                lines.append(
                    f"  {entry.total_s * 1e3:>12.2f}{entry.mean_s * 1e3:>12.3f}"
                    f"{entry.max_s * 1e3:>12.3f}{entry.calls:>8d}"
                    f"{entry.errors:>8d}  {entry.key}"
                )
        erroring = self.most_erroring(count=top)
        if erroring:
            lines.append("most erroring:")
            for entry in erroring:
                lines.append(
                    f"  {entry.errors:4d}/{entry.calls:<6d} "
                    f"[{entry.kind}] {entry.key}"
                )
        return "\n".join(lines) if lines else "no profile data recorded"


class NoopProfiler:
    """Disabled profiler (records nothing)."""

    enabled = False

    def record(self, kind, key, seconds, *, error=False) -> None:
        return None

    def record_batch(self, records) -> None:
        return None

    def record_rules(self, records) -> None:
        return None

    def merge_entries(self, rows) -> None:
        return None

    def entries(self, kind=None) -> list:
        return []

    def hottest(self, kind=None, count=10) -> list:
        return []

    def most_erroring(self, kind=None, count=10) -> list:
        return []

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def render(self, *, top: int = 10) -> str:
        return "telemetry disabled; no profile data"


NOOP_PROFILER = NoopProfiler()
