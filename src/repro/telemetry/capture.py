"""Cross-process telemetry fabric: worker-side capture, parent-side merge.

The process executor evaluates shards in worker processes, which would
otherwise leave the scan cycle's telemetry blind to everything past the
process boundary: frame/stage/rule spans, per-rule metric tallies, and
profiler entries all accumulate in the *worker's* collectors and die
with the shard.  This module makes that state travel:

- :func:`capture_telemetry` runs in the worker at the end of a shard.
  It drains the worker's span collector, push-style metric families,
  and profiler into a pickle-safe :class:`TelemetryCapture` that rides
  back inside the ``ShardResult`` envelope.  Draining (rather than
  snapshot-diffing) keeps every capture an exact per-shard delta with
  no cross-shard double counting.

  Only *position-dependent* telemetry travels this way: the worker's
  frame/stage spans (raw, unexpanded), its deferred rule-span batches
  (shipped as back-references to the rule results already crossing in
  the shard's reports), and whatever the normalizer recorded while
  parsing (lens profiles, parse metrics).  Rule metric tallies,
  per-rule profiler rows, and the frame/busy counters are
  position-independent, so the parent derives them from the
  deserialized reports through the exact code path the thread backend
  uses -- the capture stays small and the parent-side registry stays
  identical across backends by construction.

- :func:`merge_shard_capture` runs in the parent during reassembly.  It
  records the parent-side ``shard-N`` span at its true dispatch ->
  completion position and queues the capture's span payload on the
  parent collector unexpanded
  (:meth:`~repro.telemetry.spans.SpanCollector.adopt_capture`); clock
  re-basing, id re-keying, linking worker roots under the shard span,
  and rule-batch expansion all happen lazily at read time
  (``finished()``), so a steady-state cycle that clears without
  exporting a trace pays nothing per worker span.  Metric deltas
  (counters add, histograms merge buckets) and profiler rows fold into
  the parent registry/profiler eagerly -- both are scraped between
  exports.

Clock re-basing: ``perf_counter`` origins are per-process and cannot be
compared across the boundary, but the wall clock is shared by every
process on the host.  Each :class:`~repro.telemetry.spans.SpanCollector`
records the wall time of its perf-counter origin, so a worker span at
worker-relative offset ``t`` lands at parent-relative offset
``t + (worker.origin_wall - parent.origin_wall)`` -- exact up to wall
vs. monotonic drift over one scan cycle (microseconds).

Families the parent refreshes from its own pull-style sources
(absolute ``set()`` semantics: parse cache, plan cache, artifact store,
verdict store) are excluded from the capture -- folding worker deltas
into them would be clobbered at the next scrape, and their worker-side
deltas already travel explicitly in the ``ShardResult`` stats fields.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

from repro.telemetry.metrics import Counter, Gauge, Histogram
from repro.telemetry.spans import Span

#: Metric families mirrored into the parent registry by pull-style
#: collectors with absolute ``set()`` semantics; never folded from
#: worker captures (see module docstring).
PARENT_MIRRORED_PREFIXES = (
    "repro_parse_cache_",
    "repro_plan_",
    "repro_artifact_",
    "repro_verdict_store_",
)


@dataclass
class FamilyDelta:
    """One metric family's per-shard delta (pickle-safe)."""

    name: str
    kind: str                      # "counter" | "gauge" | "histogram"
    help: str
    label_names: tuple
    #: counter/gauge: ``[(label_values, value)]``; histogram:
    #: ``[(label_values, (bucket_counts, sum, count, min, max))]``.
    samples: list
    buckets: tuple | None = None


@dataclass
class TelemetryCapture:
    """One shard's worth of worker-process telemetry (pickle-safe)."""

    #: Worker process id: merged spans keep it so the exporter can lay
    #: them out on distinct per-process lanes.
    pid: int
    #: Wall-clock time of the worker collector's perf-counter origin
    #: (the cross-process re-basing anchor).
    origin_wall: float
    #: The worker collector's perf-counter origin itself: deferred rule
    #: batches carry raw worker ``perf_counter`` stamps, re-based only
    #: when the parent expands them.
    origin_perf: float = 0.0
    #: Concrete spans as raw tuples ``(name, category, span_id,
    #: parent_id, thread_id, start_s, duration_s, attrs)`` with
    #: ``start_s`` relative to the worker collector's origin.
    spans: list[tuple] = field(default_factory=list)
    #: Deferred ``record_rules`` batches, shipped unexpanded: the
    #: rule-result objects already cross in the shard's reports, so the
    #: single per-shard pickle stores them once and the capture costs
    #: only back-references.  Expanded into rule spans lazily by the
    #: parent collector's ``finished()``.
    rule_batches: list[tuple] = field(default_factory=list)
    metrics: list[FamilyDelta] = field(default_factory=list)
    #: ``(kind, key, calls, errors, total_s, max_s)`` profiler rows.
    profiler: list[tuple] = field(default_factory=list)


def reset_capture(telemetry) -> None:
    """Drop any worker telemetry left over from a shard whose result
    never shipped (e.g. its encode failed).  Called at shard start so a
    capture only ever describes its own shard."""
    telemetry.spans.clear()
    telemetry.profiler.clear()
    _drain_metrics(telemetry.metrics, collect=False)


def _drain_metrics(registry, *, collect: bool = True) -> list[FamilyDelta]:
    """Drain push-style families into deltas (and clear them)."""
    if collect:
        # Pull collectors first: the deferred per-rule verdict tally
        # (ConfigValidator._collect_rule_metrics) materializes here.
        registry.collect()
    out: list[FamilyDelta] = []
    for family in registry.families():
        if family.name.startswith(PARENT_MIRRORED_PREFIXES):
            continue
        if isinstance(family, Histogram):
            samples = [
                (key, (list(child.bucket_counts), child.total,
                       child.count, child.min, child.max))
                for key, child in family.samples()
                if child.count
            ]
            if samples:
                out.append(FamilyDelta(
                    family.name, family.kind, family.help,
                    family.label_names, samples, buckets=family.buckets,
                ))
            family.clear()
        elif isinstance(family, (Counter, Gauge)):
            samples = [(key, value) for key, value in family.samples()
                       if value]
            if samples:
                out.append(FamilyDelta(
                    family.name, family.kind, family.help,
                    family.label_names, samples,
                ))
            family.clear()
    return out


def capture_telemetry(telemetry) -> TelemetryCapture:
    """Drain the worker's telemetry into a pickle-safe capture.

    Worker side of the fabric: called once at the end of a shard.  Span
    rows and rule batches cross unexpanded; the metric/profiler lists
    carry only what the worker recorded outside the rule loop (parse
    instrumentation).  The collectors are left empty for the next
    shard.
    """
    spans = telemetry.spans
    span_rows, rule_batches = spans.drain_capture()
    profiler_rows = [
        (entry.kind, entry.key, entry.calls, entry.errors,
         entry.total_s, entry.max_s)
        for entry in telemetry.profiler.entries()
    ]
    telemetry.profiler.clear()
    return TelemetryCapture(
        pid=os.getpid(),
        origin_wall=spans.origin_wall,
        origin_perf=spans.origin_perf,
        spans=span_rows,
        rule_batches=rule_batches,
        # collect=False: every pull collector in a worker is either
        # parent-mirrored (excluded from captures) or the rule tally,
        # which no longer materializes worker-side -- running them per
        # shard would only burn time.  Push-style families (parse
        # errors) are drained as-is.
        metrics=_drain_metrics(telemetry.metrics, collect=False),
        profiler=profiler_rows,
    )


def merge_metrics(registry, families: list[FamilyDelta]) -> None:
    """Fold worker metric deltas into the parent registry.

    Counters and gauges add; histograms merge per-bucket counts exactly
    (:meth:`~repro.telemetry.metrics.Histogram.merge_child`).
    """
    for fam in families:
        label_names = tuple(fam.label_names)
        if fam.kind == "histogram":
            hist = registry.histogram(
                fam.name, fam.help, label_names,
                buckets=tuple(fam.buckets or ()),
            )
            for values, (bucket_counts, total, count, low, high) in \
                    fam.samples:
                hist.merge_child(values, bucket_counts, total, count,
                                 low, high)
        else:
            builder = (registry.gauge if fam.kind == "gauge"
                       else registry.counter)
            family = builder(fam.name, fam.help, label_names)
            for values, value in fam.samples:
                family.inc(value, **dict(zip(label_names, values)))


def merge_shard_capture(
    telemetry,
    capture: TelemetryCapture | None,
    *,
    name: str,
    start_s: float,
    duration_s: float,
    attrs: dict[str, str] | None = None,
) -> None:
    """Record a shard span and graft a worker capture beneath it.

    Parent side of the fabric.  ``start_s``/``duration_s`` position the
    shard span on the parent collector's timeline (dispatch ->
    completion, measured by the parent -- never reconstructed from the
    worker's duration, so out-of-order completions land where they
    actually ran).  When ``capture`` is present its spans are re-based,
    re-keyed, and parented: worker roots hang off the shard span, which
    itself hangs off the calling thread's innermost open span (the
    ``validate_frames`` run span during reassembly).  Metric and
    profiler deltas fold into the parent collectors.

    A shard that died before producing a capture simply records the
    bare shard span -- partial worker state never reaches the merge.
    """
    spans = telemetry.spans
    if not spans.enabled:
        return
    parent = spans.current()
    shard_span = Span(
        name=name,
        category="shard",
        span_id=spans.new_id(),
        parent_id=parent.span_id if parent is not None else None,
        thread_id=threading.get_ident(),
        start_s=start_s,
        duration_s=duration_s,
        attrs=dict(attrs) if attrs else {},
    )
    spans.adopt([shard_span])
    if capture is not None:
        # Deferred graft: the raw rows and unexpanded rule batches are
        # queued as-is and only re-keyed/re-based/expanded when the
        # collector is actually read (``finished()``).  A steady-state
        # cycle that clears without exporting pays nothing per span.
        spans.adopt_capture(
            rows=capture.spans,
            rule_batches=capture.rule_batches,
            offset_s=capture.origin_wall - spans.origin_wall,
            origin_perf=capture.origin_perf,
            pid=capture.pid,
            parent_id=shard_span.span_id,
        )
        merge_metrics(telemetry.metrics, capture.metrics)
        telemetry.profiler.merge_entries(capture.profiler)
