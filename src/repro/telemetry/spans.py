"""Hierarchical trace spans for the scan cycle.

A fleet scan decomposes into the paper's Fig. 1 pipeline, and the span
tree mirrors it::

    scan_cycle                      (one per BatchScanner cycle)
      crawl:<kind>:<name>           (Config Extractor, one per entity)
      validate_frames               (one per validation run)
        frame:<target>              (one per frame, possibly on a worker)
          evaluate                  (Rule Engine stage)
            rule:<name>             (one per rule evaluation)
            parse:<lens>            (Data Normalizer, cache misses only)
        composite                   (cross-entity stage)
          rule:<name>

Spans carry wall-clock-anchored start times but are measured with
``time.perf_counter`` so durations are monotonic; the tree is safe to
build from any number of worker threads.  Cross-thread parenting is
explicit: the fan-out code captures the enclosing span before handing
work to the pool and passes it as ``parent=``; within a thread the
collector keeps a thread-local stack so nesting is implicit.

:class:`NoopSpanCollector` implements the same API as pure no-ops (its
context manager is a shared singleton), which is what the engine uses
when telemetry is disabled -- the instrumented hot path costs one
attribute check.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One finished (or in-flight) span."""

    name: str
    category: str
    span_id: int
    parent_id: int | None
    thread_id: int
    start_s: float               # perf_counter-based, collector-relative
    duration_s: float = 0.0
    attrs: dict[str, str] = field(default_factory=dict)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._collector._finish(self)

    # Set by the collector before handing the span out; not part of the
    # recorded data.
    _collector: "SpanCollector" = None  # type: ignore[assignment]


class _NoopSpan:
    """Shared do-nothing context manager; also poses as a parent span."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class SpanCollector:
    """Thread-safe in-process collector of trace spans."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        #: Raw tuples from the hot :meth:`record` path; materialized into
        #: :class:`Span` objects lazily by :meth:`finished`.
        self._raw: list[tuple] = []
        #: Whole-frame rule batches from :meth:`record_rules`; expanded
        #: into rule spans lazily by :meth:`finished`.
        self._rule_batches: list[tuple] = []
        #: ``next()`` on an itertools counter is atomic under the GIL.
        self._ids = itertools.count(1)
        self._local = threading.local()
        #: perf_counter origin; span starts are relative to this.
        self.origin_perf = time.perf_counter()
        #: wall-clock time of the origin (for export timestamps).
        self.origin_wall = time.time()

    # ---- recording --------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, *, category: str = "",
             parent: Span | None = None, **attrs: str) -> Span:
        """Open a span as a context manager.

        The parent defaults to the innermost open span of the *calling
        thread*; pass ``parent=`` explicitly when the span logically
        nests under a span opened on another thread (pool fan-out).
        """
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        span = Span(
            name=name,
            category=category,
            span_id=next(self._ids),
            parent_id=parent.span_id if isinstance(parent, Span) else None,
            thread_id=threading.get_ident(),
            start_s=time.perf_counter() - self.origin_perf,
            attrs=dict(attrs) if attrs else {},
        )
        span._collector = self
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.duration_s = (
            time.perf_counter() - self.origin_perf - span.start_s
        )
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:            # exited out of order; still unwind
            stack.remove(span)
        # list.append is atomic under the GIL; no lock on completion.
        self._spans.append(span)

    def record(self, name: str, *, category: str = "",
               start_s: float, duration_s: float,
               parent: Span | None = None, **attrs: str) -> None:
        """Add an already-measured span (``start_s`` in perf_counter time).

        This is the allocation-light path the per-rule instrumentation
        uses: the engine already measures each evaluation for
        ``RuleResult.duration_s``, so the span reuses that measurement
        instead of nesting another context manager in the hot loop.  Only
        a raw tuple is stored; :meth:`finished` materializes it.
        """
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        self._raw.append((
            name,
            category,
            next(self._ids),
            parent.span_id if isinstance(parent, Span) else None,
            threading.get_ident(),
            start_s - self.origin_perf,
            duration_s,
            attrs,
        ))

    def record_batch(self, records, *, category: str = "",
                     parent: Span | None = None) -> None:
        """Bulk :meth:`record`: ``records`` yields tuples of
        ``(name, start_s, duration_s, attrs)`` sharing one category and
        one parent (default: the calling thread's innermost open span).
        Amortizes per-span overhead for the per-rule hot path.
        """
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        parent_id = parent.span_id if isinstance(parent, Span) else None
        thread_id = threading.get_ident()
        origin = self.origin_perf
        ids = self._ids
        append = self._raw.append
        for name, start_s, duration_s, attrs in records:
            append((
                name, category, next(ids), parent_id, thread_id,
                start_s - origin, duration_s, attrs,
            ))

    def record_rules(self, records: list, *,
                     parent: Span | None = None) -> None:
        """Defer one frame's rule spans in a single list append.

        ``records`` is a list of rule-result objects, each exposing
        ``rule.name``, ``entity``, ``verdict.value``, ``started_s``
        (raw ``perf_counter`` time), and ``duration_s``; the list MUST
        not be mutated afterwards.  Nothing per rule happens here; the
        batch is expanded into ``category="rule"`` spans by
        :meth:`finished`, i.e. at export time instead of on the scan
        cycle's hot path.
        """
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        self._rule_batches.append((
            parent.span_id if isinstance(parent, Span) else None,
            threading.get_ident(),
            records,
        ))

    # ---- inspection -------------------------------------------------------

    def current(self) -> Span | None:
        """The innermost open span of the calling thread."""
        stack = self._stack()
        return stack[-1] if stack else None

    def finished(self) -> list[Span]:
        """Snapshot of all recorded spans (closed ones)."""
        with self._lock:
            spans = list(self._spans)
            raw = list(self._raw)
            batches = list(self._rule_batches)
        spans.extend(
            Span(
                name=name, category=category, span_id=span_id,
                parent_id=parent_id, thread_id=thread_id,
                start_s=start_s, duration_s=duration_s, attrs=attrs,
            )
            for (name, category, span_id, parent_id, thread_id,
                 start_s, duration_s, attrs) in raw
        )
        ids = self._ids
        origin = self.origin_perf
        for parent_id, thread_id, records in batches:
            spans.extend(
                Span(
                    name=result.rule.name, category="rule",
                    span_id=next(ids),
                    parent_id=parent_id, thread_id=thread_id,
                    start_s=result.started_s - origin,
                    duration_s=result.duration_s,
                    attrs={"entity": result.entity,
                           "verdict": result.verdict.value},
                )
                for result in records
            )
        return spans

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._raw.clear()
            self._rule_batches.clear()

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._spans) + len(self._raw)
                + sum(len(records) for _p, _t, records
                      in self._rule_batches)
            )


class NoopSpanCollector:
    """API-compatible collector that records nothing."""

    enabled = False

    def span(self, name: str, *, category: str = "",
             parent=None, **attrs) -> _NoopSpan:
        return _NOOP_SPAN

    def record(self, name: str, *, category: str = "", start_s: float = 0.0,
               duration_s: float = 0.0, parent=None, **attrs) -> None:
        return None

    def record_batch(self, records, *, category: str = "",
                     parent=None) -> None:
        return None

    def record_rules(self, records, *, parent=None) -> None:
        return None

    def current(self) -> None:
        return None

    def finished(self) -> list:
        return []

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


#: Shared disabled collector (safe: it holds no state).
NOOP_SPANS = NoopSpanCollector()
