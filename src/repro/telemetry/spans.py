"""Hierarchical trace spans for the scan cycle.

A fleet scan decomposes into the paper's Fig. 1 pipeline, and the span
tree mirrors it::

    scan_cycle                      (one per BatchScanner cycle)
      crawl:<kind>:<name>           (Config Extractor, one per entity)
      validate_frames               (one per validation run)
        frame:<target>              (one per frame, possibly on a worker)
          evaluate                  (Rule Engine stage)
            rule:<name>             (one per rule evaluation)
            parse:<lens>            (Data Normalizer, cache misses only)
        composite                   (cross-entity stage)
          rule:<name>

Spans carry wall-clock-anchored start times but are measured with
``time.perf_counter`` so durations are monotonic; the tree is safe to
build from any number of worker threads.  Cross-thread parenting is
explicit: the fan-out code captures the enclosing span before handing
work to the pool and passes it as ``parent=``; within a thread the
collector keeps a thread-local stack so nesting is implicit.

:class:`NoopSpanCollector` implements the same API as pure no-ops (its
context manager is a shared singleton), which is what the engine uses
when telemetry is disabled -- the instrumented hot path costs one
attribute check.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One finished (or in-flight) span."""

    name: str
    category: str
    span_id: int
    parent_id: int | None
    thread_id: int
    start_s: float               # perf_counter-based, collector-relative
    duration_s: float = 0.0
    attrs: dict[str, str] = field(default_factory=dict)
    #: Originating process id for spans merged from worker processes
    #: (None = recorded in this process).  Drives the exporter's
    #: per-process lanes.
    pid: int | None = None

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._collector._finish(self)

    # Set by the collector before handing the span out; not part of the
    # recorded data.
    _collector: "SpanCollector" = None  # type: ignore[assignment]


class _NoopSpan:
    """Shared do-nothing context manager; also poses as a parent span."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class SpanCollector:
    """Thread-safe in-process collector of trace spans."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        #: Raw tuples from the hot :meth:`record` path; materialized into
        #: :class:`Span` objects lazily by :meth:`finished`.
        self._raw: list[tuple] = []
        #: Whole-frame rule batches from :meth:`record_rules`; expanded
        #: into rule spans lazily by :meth:`finished`.
        self._rule_batches: list[tuple] = []
        #: Worker-shard captures from :meth:`adopt_capture`; re-keyed
        #: into this collector's id space and re-based onto its clock
        #: lazily by :meth:`finished` -- a steady-state cycle that never
        #: exports a trace pays nothing for the merge.
        self._adoptions: list[tuple] = []
        #: ``next()`` on an itertools counter is atomic under the GIL.
        self._ids = itertools.count(1)
        self._local = threading.local()
        #: perf_counter origin; span starts are relative to this.
        self.origin_perf = time.perf_counter()
        #: wall-clock time of the origin (for export timestamps).
        self.origin_wall = time.time()

    # ---- recording --------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, *, category: str = "",
             parent: Span | None = None, **attrs: str) -> Span:
        """Open a span as a context manager.

        The parent defaults to the innermost open span of the *calling
        thread*; pass ``parent=`` explicitly when the span logically
        nests under a span opened on another thread (pool fan-out).
        """
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        span = Span(
            name=name,
            category=category,
            span_id=next(self._ids),
            parent_id=parent.span_id if isinstance(parent, Span) else None,
            thread_id=threading.get_ident(),
            start_s=time.perf_counter() - self.origin_perf,
            attrs=dict(attrs) if attrs else {},
        )
        span._collector = self
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.duration_s = (
            time.perf_counter() - self.origin_perf - span.start_s
        )
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:            # exited out of order; still unwind
            stack.remove(span)
        # list.append is atomic under the GIL; no lock on completion.
        self._spans.append(span)

    def record(self, name: str, *, category: str = "",
               start_s: float, duration_s: float,
               parent: Span | None = None, **attrs: str) -> None:
        """Add an already-measured span (``start_s`` in perf_counter time).

        This is the allocation-light path the per-rule instrumentation
        uses: the engine already measures each evaluation for
        ``RuleResult.duration_s``, so the span reuses that measurement
        instead of nesting another context manager in the hot loop.  Only
        a raw tuple is stored; :meth:`finished` materializes it.
        """
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        self._raw.append((
            name,
            category,
            next(self._ids),
            parent.span_id if isinstance(parent, Span) else None,
            threading.get_ident(),
            start_s - self.origin_perf,
            duration_s,
            attrs,
        ))

    def record_batch(self, records, *, category: str = "",
                     parent: Span | None = None) -> None:
        """Bulk :meth:`record`: ``records`` yields tuples of
        ``(name, start_s, duration_s, attrs)`` sharing one category and
        one parent (default: the calling thread's innermost open span).
        Amortizes per-span overhead for the per-rule hot path.
        """
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        parent_id = parent.span_id if isinstance(parent, Span) else None
        thread_id = threading.get_ident()
        origin = self.origin_perf
        ids = self._ids
        append = self._raw.append
        for name, start_s, duration_s, attrs in records:
            append((
                name, category, next(ids), parent_id, thread_id,
                start_s - origin, duration_s, attrs,
            ))

    def record_rules(self, records: list, *,
                     parent: Span | None = None) -> None:
        """Defer one frame's rule spans in a single list append.

        ``records`` is a list of rule-result objects, each exposing
        ``rule.name``, ``entity``, ``verdict.value``, ``started_s``
        (raw ``perf_counter`` time), and ``duration_s``; the list MUST
        not be mutated afterwards.  Nothing per rule happens here; the
        batch is expanded into ``category="rule"`` spans by
        :meth:`finished`, i.e. at export time instead of on the scan
        cycle's hot path.
        """
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        self._rule_batches.append((
            parent.span_id if isinstance(parent, Span) else None,
            threading.get_ident(),
            records,
        ))

    # ---- cross-process merge ----------------------------------------------

    def new_id(self) -> int:
        """Allocate a span id from this collector's counter.

        Used by the cross-process merge to re-key worker spans into the
        parent's id space (worker collectors number from 1 too, so raw
        ids would collide)."""
        return next(self._ids)

    def adopt(self, spans: list[Span]) -> None:
        """Append externally built spans (the cross-process merge path).

        Callers are responsible for id uniqueness (:meth:`new_id`) and
        for re-basing ``start_s`` onto this collector's origin."""
        with self._lock:
            self._spans.extend(spans)

    def drain_capture(self) -> tuple[list[tuple], list[tuple]]:
        """Drain everything recorded so far, unexpanded, for a worker
        shard capture.

        Returns ``(rows, rule_batches)``: ``rows`` are raw span tuples
        (closed :class:`Span` objects flattened, plus the
        :meth:`record` tuples verbatim) and ``rule_batches`` are the
        deferred :meth:`record_rules` entries as recorded.  Nothing is
        expanded -- the rule-result objects in the batches also travel
        in the shard's reports, so pickling the capture alongside them
        costs only back-references -- and the collector is left empty
        for the next shard.
        """
        with self._lock:
            spans, self._spans = self._spans, []
            raw, self._raw = self._raw, []
            batches, self._rule_batches = self._rule_batches, []
        rows = [
            (span.name, span.category, span.span_id, span.parent_id,
             span.thread_id, span.start_s, span.duration_s, span.attrs)
            for span in spans
        ]
        rows.extend(raw)
        return rows, batches

    def adopt_capture(self, *, rows: list[tuple], rule_batches: list[tuple],
                      offset_s: float, origin_perf: float,
                      pid: int | None, parent_id: int | None) -> None:
        """Queue one worker shard capture for lazy merge.

        ``offset_s`` re-bases the capture's clock onto this collector's
        origin; ``origin_perf`` is the *worker* collector's perf origin
        (rule batches carry raw worker ``perf_counter`` stamps);
        ``parent_id`` is the span the capture's roots re-parent under
        (the shard span).  Expansion -- id re-keying included -- happens
        in :meth:`finished`.
        """
        with self._lock:
            self._adoptions.append(
                (rows, rule_batches, offset_s, origin_perf, pid, parent_id)
            )

    # ---- inspection -------------------------------------------------------

    def current(self) -> Span | None:
        """The innermost open span of the calling thread."""
        stack = self._stack()
        return stack[-1] if stack else None

    def finished(self) -> list[Span]:
        """Snapshot of all recorded spans (closed ones)."""
        with self._lock:
            spans = list(self._spans)
            raw = list(self._raw)
            batches = list(self._rule_batches)
            adoptions = list(self._adoptions)
        spans.extend(
            Span(
                name=name, category=category, span_id=span_id,
                parent_id=parent_id, thread_id=thread_id,
                start_s=start_s, duration_s=duration_s, attrs=attrs,
            )
            for (name, category, span_id, parent_id, thread_id,
                 start_s, duration_s, attrs) in raw
        )
        ids = self._ids
        origin = self.origin_perf
        for parent_id, thread_id, records in batches:
            spans.extend(
                Span(
                    name=result.rule.name, category="rule",
                    span_id=next(ids),
                    parent_id=parent_id, thread_id=thread_id,
                    start_s=result.started_s - origin,
                    duration_s=result.duration_s,
                    attrs={"entity": result.entity,
                           "verdict": result.verdict.value},
                )
                for result in records
            )
        for (rows, rule_batches, offset_s, worker_origin, pid,
             root_id) in adoptions:
            # Re-key the capture into this collector's id space (worker
            # collectors number from 1 too); unreferenced parents --
            # i.e. worker-side roots -- re-parent under the shard span.
            id_map = {row[2]: next(ids) for row in rows}
            spans.extend(
                Span(
                    name=name, category=category, span_id=id_map[span_id],
                    parent_id=(id_map.get(parent_id, root_id)
                               if parent_id is not None else root_id),
                    thread_id=thread_id,
                    start_s=start_s + offset_s, duration_s=duration_s,
                    attrs=attrs, pid=pid,
                )
                for (name, category, span_id, parent_id, thread_id,
                     start_s, duration_s, attrs) in rows
            )
            for parent_id, thread_id, records in rule_batches:
                mapped = (id_map.get(parent_id, root_id)
                          if parent_id is not None else root_id)
                spans.extend(
                    Span(
                        name=result.rule.name, category="rule",
                        span_id=next(ids),
                        parent_id=mapped, thread_id=thread_id,
                        start_s=result.started_s - worker_origin + offset_s,
                        duration_s=result.duration_s,
                        attrs={"entity": result.entity,
                               "verdict": result.verdict.value},
                        pid=pid,
                    )
                    for result in records
                )
        return spans

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._raw.clear()
            self._rule_batches.clear()
            self._adoptions.clear()

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._spans) + len(self._raw)
                + sum(len(records) for _p, _t, records
                      in self._rule_batches)
                + sum(
                    len(rows) + sum(len(records) for _p, _t, records
                                    in rule_batches)
                    for (rows, rule_batches, _o, _w, _pid, _r)
                    in self._adoptions
                )
            )


class NoopSpanCollector:
    """API-compatible collector that records nothing."""

    enabled = False

    def span(self, name: str, *, category: str = "",
             parent=None, **attrs) -> _NoopSpan:
        return _NOOP_SPAN

    def record(self, name: str, *, category: str = "", start_s: float = 0.0,
               duration_s: float = 0.0, parent=None, **attrs) -> None:
        return None

    def record_batch(self, records, *, category: str = "",
                     parent=None) -> None:
        return None

    def record_rules(self, records, *, parent=None) -> None:
        return None

    def new_id(self) -> int:
        return 0

    def adopt(self, spans) -> None:
        return None

    def drain_capture(self) -> tuple[list, list]:
        return [], []

    def adopt_capture(self, *, rows, rule_batches, offset_s=0.0,
                      origin_perf=0.0, pid=None, parent_id=None) -> None:
        return None

    def current(self) -> None:
        return None

    def finished(self) -> list:
        return []

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


#: Shared disabled collector (safe: it holds no state).
NOOP_SPANS = NoopSpanCollector()
