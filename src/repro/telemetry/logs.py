"""Structured logging for the scan pipeline.

All pipeline loggers live under the ``"repro"`` namespace
(:func:`get_logger` prefixes it), so one call to
:func:`configure_logging` governs the whole process.  Two formats:

* plain -- ``LEVEL logger: message`` (human, the default);
* JSON  -- one object per line with ``ts``/``level``/``logger``/
  ``message``, any ``extra={...}`` fields the call site attached, and
  ``exc_type``/``traceback`` when an exception rides along.  This is the
  machine-readable evidence trail; it goes to stderr so reports on
  stdout stay byte-identical whether or not logging is on.

Library default is silence (a ``NullHandler`` on the namespace root), per
stdlib convention: importing :mod:`repro` never configures logging.
"""

from __future__ import annotations

import json
import logging
import sys
import time
import traceback

ROOT_LOGGER_NAME = "repro"

#: logging.LogRecord attributes that are plumbing, not payload.
_RESERVED = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    )
)

logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A pipeline logger, namespaced under ``repro.``."""
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record, key order stable."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key in payload:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
            payload["traceback"] = "".join(
                traceback.format_exception(*record.exc_info)
            ).rstrip()
        return json.dumps(payload, sort_keys=False)


class PlainLogFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL logger: message`` with indented tracebacks."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        line = (
            f"{stamp} {record.levelname:<7} {record.name}: "
            f"{record.getMessage()}"
        )
        if record.exc_info and record.exc_info[0] is not None:
            trace = "".join(
                traceback.format_exception(*record.exc_info)
            ).rstrip()
            line += "\n" + "\n".join(
                f"    {row}" for row in trace.splitlines()
            )
        return line


def configure_logging(
    level: str = "warning",
    *,
    json_output: bool = False,
    stream=None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logging namespace.

    Idempotent: previous handlers installed by this function are
    replaced, so CLI entry points and tests can call it freely.  Returns
    the namespace root logger.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        JsonLogFormatter() if json_output else PlainLogFormatter()
    )
    handler.set_name("repro-telemetry")
    for existing in list(root.handlers):
        if existing.get_name() == "repro-telemetry":
            root.removeHandler(existing)
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False
    return root
