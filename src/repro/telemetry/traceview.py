"""Offline scan-trace analysis: the ``repro trace`` subcommand.

Consumes a Chrome ``trace_event`` file written by ``--trace-out`` (any
backend; the interesting case is a merged process-executor trace with
per-worker pid lanes) and answers the operator questions a raw Perfetto
timeline makes you eyeball:

- **critical path** -- the chain of spans that determines the cycle's
  end-to-end latency (at each level, the child that finishes last);
- **worker utilization / gantt** -- per process+thread lane, how much of
  the trace window was spent inside spans, and where the lane's work
  sat on the timeline;
- **queue-wait vs execution** -- from the ``shard-N`` spans' dispatch ->
  completion windows and their ``queue_s`` / ``exec_s`` attributes, how
  much shard wall time went to waiting for a worker, evaluating, and
  dispatch/IPC overhead;
- **straggler shards** -- shards well above the median, the load-balance
  signal that decides ``--shard-size``.

Everything here is pure post-processing of the JSON file -- no live
telemetry objects involved -- so it works on traces captured on another
host entirely.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

#: A shard is flagged as a straggler when it runs longer than this
#: multiple of the median shard duration.
STRAGGLER_FACTOR = 1.5

_BAR_WIDTH = 40


@dataclass
class TraceEvent:
    """One complete ("X") event from the trace file."""

    name: str
    cat: str
    pid: int
    tid: int
    ts: float                    # microseconds
    dur: float                   # microseconds
    span_id: int | None
    parent_id: int | None
    args: dict

    @property
    def end(self) -> float:
        return self.ts + self.dur


class TraceError(ValueError):
    """The file is not a usable Chrome trace."""


def load_trace(path: str) -> list[TraceEvent]:
    """Parse the complete events out of a ``trace_event`` JSON file.

    Accepts both the object format (``{"traceEvents": [...]}`` -- what
    ``--trace-out`` writes) and the bare array format.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise TraceError(f"cannot read trace {path!r}: {error}") from None
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
    else:
        events = payload
    if not isinstance(events, list):
        raise TraceError(f"{path!r} has no traceEvents array")
    out: list[TraceEvent] = []
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        args = event.get("args") or {}
        out.append(TraceEvent(
            name=str(event.get("name", "")),
            cat=str(event.get("cat", "")),
            pid=int(event.get("pid", 0)),
            tid=int(event.get("tid", 0)),
            ts=float(event.get("ts", 0.0)),
            dur=float(event.get("dur", 0.0)),
            span_id=args.get("span_id"),
            parent_id=args.get("parent_id"),
            args=args,
        ))
    return out


# ---- analyses ----------------------------------------------------------------


def _union_us(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by possibly-nested/overlapping intervals."""
    total = 0.0
    end = float("-inf")
    for start, stop in sorted(intervals):
        if stop <= end:
            continue
        total += stop - max(start, end)
        end = stop
    return total


def _critical_path(events: list[TraceEvent], root: TraceEvent) -> list[dict]:
    """The chain of spans that bounds the root's end-to-end duration.

    Fork-join reading: a span cannot end before its last-finishing
    child, so walking 'latest-ending child' from the root yields the
    path an operator must shorten to shorten the cycle.
    """
    children: dict[int, list[TraceEvent]] = {}
    for event in events:
        if event.parent_id is not None:
            children.setdefault(event.parent_id, []).append(event)
    path: list[dict] = []
    node = root
    root_dur = root.dur or 1.0
    seen: set[int] = set()
    while node is not None:
        path.append({
            "name": node.name,
            "category": node.cat,
            "pid": node.pid,
            "start_ms": round((node.ts - root.ts) / 1000.0, 3),
            "duration_ms": round(node.dur / 1000.0, 3),
            "pct_of_root": round(100.0 * node.dur / root_dur, 1),
        })
        if node.span_id is None or node.span_id in seen:
            break
        seen.add(node.span_id)
        branch = children.get(node.span_id)
        if not branch:
            break
        node = max(branch, key=lambda e: (e.end, e.dur, -e.ts))
    return path


def _lane_label(event_pid: int, root_pid: int) -> str:
    return "parent" if event_pid == root_pid else f"worker pid {event_pid}"


def _worker_lanes(events: list[TraceEvent], root: TraceEvent,
                  extent: tuple[float, float]) -> list[dict]:
    lanes: dict[tuple[int, int], list[TraceEvent]] = {}
    for event in events:
        lanes.setdefault((event.pid, event.tid), []).append(event)
    start_us, end_us = extent
    window = max(end_us - start_us, 1.0)
    out = []
    for (pid, tid), lane_events in sorted(lanes.items(),
                                          key=lambda kv: (
                                              kv[0][0] != root.pid,
                                              kv[0])):
        busy = _union_us([(e.ts, e.end) for e in lane_events])
        first = min(e.ts for e in lane_events)
        last = max(e.end for e in lane_events)
        out.append({
            "pid": pid,
            "tid": tid,
            "label": _lane_label(pid, root.pid),
            "spans": len(lane_events),
            "busy_ms": round(busy / 1000.0, 3),
            "utilization": round(busy / window, 4),
            "first_ms": round((first - start_us) / 1000.0, 3),
            "last_ms": round((last - start_us) / 1000.0, 3),
            "gantt": _gantt_bar(first, last, busy, start_us, window),
        })
    return out


def _gantt_bar(first: float, last: float, busy: float,
               origin: float, window: float) -> str:
    """A fixed-width lane bar: '.' idle, '=' active span extent,
    '#' proportionally filled by actual busy time."""
    left = int(_BAR_WIDTH * (first - origin) / window)
    right = max(left + 1, int(round(_BAR_WIDTH * (last - origin) / window)))
    right = min(right, _BAR_WIDTH)
    extent = max(right - left, 1)
    filled = min(extent, max(1, int(round(extent * busy
                                          / max(last - first, 1.0)))))
    return ("." * left + "#" * filled + "=" * (extent - filled)
            + "." * (_BAR_WIDTH - left - extent))


def _shard_breakdown(events: list[TraceEvent], top: int) -> dict | None:
    shards = [e for e in events if e.cat == "shard"]
    if not shards:
        return None
    durs = sorted(e.dur for e in shards)
    median = durs[len(durs) // 2]
    queue_us = sum(float(e.args.get("queue_s", 0.0)) * 1e6 for e in shards)
    exec_us = sum(float(e.args.get("exec_s", 0.0)) * 1e6 for e in shards)
    span_us = sum(e.dur for e in shards)
    threshold = STRAGGLER_FACTOR * median
    stragglers = sorted(
        (e for e in shards if len(shards) > 1 and e.dur > threshold),
        key=lambda e: -e.dur,
    )[:top]
    return {
        "count": len(shards),
        "total_ms": round(span_us / 1000.0, 3),
        "queue_wait_ms": round(queue_us / 1000.0, 3),
        "execution_ms": round(exec_us / 1000.0, 3),
        # Dispatch/IPC/pickle time: the part of a shard's dispatch ->
        # completion window that was neither queueing nor evaluating.
        "overhead_ms": round(max(0.0, span_us - queue_us - exec_us)
                             / 1000.0, 3),
        "median_ms": round(median / 1000.0, 3),
        "straggler_threshold_ms": round(threshold / 1000.0, 3),
        "stragglers": [
            {
                "name": e.name,
                "duration_ms": round(e.dur / 1000.0, 3),
                "frames": int(e.args.get("frames", 0)),
                "queue_wait_ms": round(
                    float(e.args.get("queue_s", 0.0)) * 1000.0, 3),
                "worker_pid": e.args.get("worker_pid"),
            }
            for e in stragglers
        ],
    }


def analyze_trace(events: list[TraceEvent], *, top: int = 10) -> dict:
    """Full analysis of one trace: critical path, lanes, shards."""
    if not events:
        raise TraceError("trace contains no complete span events")
    roots = [e for e in events if e.parent_id is None]
    root = max(roots or events, key=lambda e: e.dur)
    start_us = min(e.ts for e in events)
    end_us = max(e.end for e in events)
    worker_pids = sorted({e.pid for e in events if e.pid != root.pid})
    return {
        "spans": len(events),
        "root": {"name": root.name, "category": root.cat,
                 "duration_ms": round(root.dur / 1000.0, 3)},
        "duration_ms": round((end_us - start_us) / 1000.0, 3),
        "processes": 1 + len(worker_pids),
        "worker_pids": worker_pids,
        "critical_path": _critical_path(events, root)[:max(top, 1)],
        "workers": _worker_lanes(events, root, (start_us, end_us)),
        "shards": _shard_breakdown(events, top),
    }


# ---- rendering ---------------------------------------------------------------


def render_trace_analysis(analysis: dict, *, top: int = 10) -> str:
    lines: list[str] = []
    root = analysis["root"]
    lines.append(
        f"{analysis['spans']} spans over {analysis['duration_ms']:.1f} ms, "
        f"{analysis['processes']} process(es)"
        + (f" (workers: {', '.join(str(p) for p in analysis['worker_pids'])})"
           if analysis["worker_pids"] else "")
    )
    lines.append("")
    lines.append(
        f"critical path (root {root['name']}, {root['duration_ms']:.1f} ms):"
    )
    for depth, hop in enumerate(analysis["critical_path"]):
        lane = "" if hop["pid"] == analysis["critical_path"][0]["pid"] \
            else f"  [pid {hop['pid']}]"
        lines.append(
            f"  {'  ' * depth}{hop['name']}  "
            f"{hop['duration_ms']:.2f} ms  {hop['pct_of_root']:.1f}%{lane}"
        )
    lines.append("")
    lines.append("worker lanes (#=busy, ==idle-in-extent, .=absent):")
    for lane in analysis["workers"][:max(top, 1)]:
        lines.append(
            f"  {lane['label']:<18} tid {lane['tid']:<3} "
            f"|{lane['gantt']}| "
            f"{lane['busy_ms']:>9.1f} ms busy  "
            f"{lane['utilization'] * 100:5.1f}%  "
            f"({lane['spans']} spans)"
        )
    shards = analysis["shards"]
    if shards is not None:
        lines.append("")
        lines.append(
            f"shards ({shards['count']}): "
            f"queue-wait {shards['queue_wait_ms']:.1f} ms, "
            f"execution {shards['execution_ms']:.1f} ms, "
            f"dispatch/IPC overhead {shards['overhead_ms']:.1f} ms "
            f"(median shard {shards['median_ms']:.1f} ms)"
        )
        if shards["stragglers"]:
            lines.append(
                f"  stragglers (> {STRAGGLER_FACTOR:.1f}x median = "
                f"{shards['straggler_threshold_ms']:.1f} ms):"
            )
            for shard in shards["stragglers"]:
                pid = (f"  worker {shard['worker_pid']}"
                       if shard.get("worker_pid") else "")
                lines.append(
                    f"    {shard['name']:<10} {shard['duration_ms']:>9.1f} ms"
                    f"  {shard['frames']} frame(s)"
                    f"  queue {shard['queue_wait_ms']:.1f} ms{pid}"
                )
        else:
            lines.append("  no straggler shards")
    return "\n".join(lines)
