"""Rule pack linter: catch contribution mistakes before they ship.

Checks (per rule unless noted):

* ``missing-output``      -- value rules without the output strings the
  output processor needs (matched / not-matched / not-present).
* ``missing-tags``        -- untagged rules cannot be filtered by
  compliance standard.
* ``no-assertion``        -- tree/schema/script rules with neither
  preferred nor non-preferred values degrade to bare presence checks;
  flag so that is a choice, not an accident.
* ``duplicate-name``      -- two rules in one pack with the same name (the
  second silently shadows the first during inheritance merges).
* ``dangling-composite``  -- composite expressions referencing entities no
  manifest declares.
* ``unknown-plugin``      -- script rules naming a runtime plugin that is
  not registered.
* ``unknown-parser``      -- schema rules naming an unregistered parser.
* ``unknown-lens``        -- tree rules naming an unregistered lens.
* ``empty-search-paths``  -- manifests with no search paths and no script
  rules run everywhere, which is rarely intended (info level).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.augtree.lenses import LensRegistry, default_registry
from repro.crawler.plugins import PluginRegistry, default_plugin_registry
from repro.cvl.composite_expr import referenced_entities
from repro.cvl.model import (
    CompositeRule,
    Rule,
    SchemaRule,
    ScriptRule,
    TreeRule,
)
from repro.engine.engine import ConfigValidator
from repro.schema import SchemaParserRegistry, default_schema_registry

LEVELS = ("error", "warning", "info")


@dataclass(frozen=True)
class LintFinding:
    level: str        # error | warning | info
    entity: str
    rule: str         # "" for manifest-level findings
    code: str
    message: str
    source: str = ""  # rule file the finding points into
    line: int = 0     # 1-based rule line in that file (0 = unknown)

    def render(self) -> str:
        where = f"{self.entity}/{self.rule}" if self.rule else self.entity
        text = f"{self.level.upper():<7} {self.code:<18} {where}: {self.message}"
        if self.source and self.line:
            text += f"  [{self.source}:{self.line}]"
        return text


def lint_validator(
    validator: ConfigValidator,
    *,
    plugins: PluginRegistry | None = None,
    lenses: LensRegistry | None = None,
    schemas: SchemaParserRegistry | None = None,
) -> list[LintFinding]:
    """Lint every pack the validator knows about."""
    plugins = plugins or default_plugin_registry()
    lenses = lenses or default_registry()
    schemas = schemas or default_schema_registry()
    known_entities = {manifest.entity for manifest in validator.manifests()}
    findings: list[LintFinding] = []

    for manifest in validator.manifests():
        ruleset = validator.ruleset_for(manifest)
        seen_names: set[str] = set()
        has_script_rules = any(
            isinstance(rule, ScriptRule) for rule in ruleset
        )
        if not manifest.config_search_paths and not has_script_rules:
            findings.append(
                LintFinding(
                    "info", manifest.entity, "", "empty-search-paths",
                    "manifest has no config_search_paths; the pack runs on "
                    "every entity of its kinds",
                )
            )
        for rule in ruleset:
            findings.extend(
                _lint_rule(
                    rule, manifest.entity, seen_names, known_entities,
                    plugins, lenses, schemas,
                )
            )
            seen_names.add(rule.name)
    return findings


def _lint_rule(
    rule: Rule,
    entity: str,
    seen_names: set[str],
    known_entities: set[str],
    plugins: PluginRegistry,
    lenses: LensRegistry,
    schemas: SchemaParserRegistry,
) -> list[LintFinding]:
    findings: list[LintFinding] = []

    def add(level: str, code: str, message: str) -> None:
        findings.append(LintFinding(level, entity, rule.name, code, message,
                                    source=rule.source,
                                    line=rule.source_line))

    if rule.name in seen_names:
        add("error", "duplicate-name",
            "a rule with this name already exists in the pack")

    if not rule.tags:
        add("warning", "missing-tags", "rule has no tags")

    asserts_values = bool(rule.preferred_value or rule.non_preferred_value)
    if isinstance(rule, (TreeRule, SchemaRule, ScriptRule)):
        if not asserts_values:
            add("info", "no-assertion",
                "no preferred/non-preferred values; this is a bare presence "
                "check")
        if asserts_values and not rule.not_matched_description:
            add("warning", "missing-output",
                "not_matched_preferred_value_description is empty")
        if not rule.matched_description:
            add("warning", "missing-output", "matched_description is empty")
        if not rule.not_present_description and not rule.not_present_pass:
            add("warning", "missing-output",
                "absence fails this rule but not_present_description is empty")

    if isinstance(rule, TreeRule) and rule.lens and rule.lens not in lenses:
        add("error", "unknown-lens", f"lens {rule.lens!r} is not registered")

    if isinstance(rule, SchemaRule) and rule.schema_parser:
        if rule.schema_parser not in schemas:
            add("error", "unknown-parser",
                f"schema parser {rule.schema_parser!r} is not registered")

    if isinstance(rule, ScriptRule):
        plugin, _key = rule.plugin_and_key()
        if plugin not in plugins:
            add("error", "unknown-plugin",
                f"runtime plugin {plugin!r} is not registered")

    if isinstance(rule, CompositeRule):
        for referenced in sorted(referenced_entities(rule.expression)):
            if referenced not in known_entities:
                add("error", "dangling-composite",
                    f"expression references unknown entity {referenced!r}")

    return findings


def render_findings(findings: list[LintFinding]) -> str:
    """Human-readable lint report, errors first."""
    ordered = sorted(findings, key=lambda f: (LEVELS.index(f.level), f.entity))
    lines = [finding.render() for finding in ordered]
    tally = {
        level: sum(1 for f in findings if f.level == level) for level in LEVELS
    }
    lines.append(
        f"# {len(findings)} finding(s): {tally['error']} error(s), "
        f"{tally['warning']} warning(s), {tally['info']} info"
    )
    return "\n".join(lines)
