"""Rule authoring tools.

The paper closes with two directions this package implements:

* §6: "Our hope is that one day, all applications will ship with their
  configuration profiles possibly defined in CVL" --
  :mod:`repro.authoring.scaffold` generates a CVL profile skeleton from an
  application's *observed* configuration, giving developers a starting
  point instead of a blank page.
* §5: opensourcing "shall enable leveraging community support to increase
  ConfigValidator's coverage" -- :mod:`repro.authoring.lint` checks
  contributed rule packs for the mistakes maintainers would otherwise
  catch by hand (missing output strings, untagged rules, dangling
  composite references, unknown plugins/parsers/lenses).
"""

from repro.authoring.scaffold import scaffold_rules, render_rules_yaml
from repro.authoring.lint import LintFinding, lint_validator, render_findings

__all__ = [
    "LintFinding",
    "lint_validator",
    "render_findings",
    "render_rules_yaml",
    "scaffold_rules",
]
