"""Generate CVL rule skeletons from an observed configuration file.

The generated profile asserts the *current* values as preferred -- a
"golden config" snapshot.  A developer then edits the skeleton: widening
accepted values, deleting don't-care keys, tightening severities.  This is
deliberately a starting point, not inference: the paper argues (§1) that
inference-based approaches "have some error deltas built into them" and
keeps ConfigValidator strictly rule-based.
"""

from __future__ import annotations

import json
import posixpath

from repro.errors import ReproError
from repro.augtree.lenses import Lens, lens_for_file
from repro.augtree.tree import ConfigNode, ConfigTree  # noqa: F401 (ConfigNode in annotations)
from repro.cvl.loader import build_rule
from repro.cvl.model import TreeRule


def scaffold_rules(
    text: str,
    path: str,
    *,
    lens: Lens | None = None,
    max_rules: int = 100,
    tags: list[str] | None = None,
) -> list[TreeRule]:
    """Build golden-config tree rules from one config file.

    One rule per leaf node that carries a value; the leaf's parent chain
    becomes ``config_path``.  Repeated sibling values collapse into one
    rule accepting any of the observed values.
    """
    if lens is None:
        lens = lens_for_file(path)
        if lens is None:
            raise ReproError(
                f"no lens auto-applies to {path!r}; pass one explicitly"
            )
    tree = lens.parse(text, source=path)
    observed = _collect_leaves(tree)
    basename = posixpath.basename(path)

    rules: list[TreeRule] = []
    for (config_path, name), values in observed.items():
        if len(rules) >= max_rules:
            break
        unique_values = sorted(set(values))
        mapping = {
            "config_name": name,
            "config_path": [config_path],
            "config_description": f"Golden value for {name} "
                                  f"(generated from {basename}).",
            "file_context": [basename],
            "preferred_value": unique_values,
            "preferred_value_match": "exact,any",
            "not_present_description": f"{name} is no longer configured.",
            "not_matched_preferred_value_description":
                f"{name} drifted from the golden configuration.",
            "matched_description": f"{name} matches the golden configuration.",
            "tags": list(tags) if tags else ["#generated", "#golden-config"],
            "severity": "informational",
        }
        rule = build_rule(mapping, source=f"<scaffold:{basename}>")
        assert isinstance(rule, TreeRule)
        rules.append(rule)
    return rules


def _collect_leaves(tree: ConfigTree) -> dict[tuple[str, str], list[str]]:
    """Map (parent path, leaf label) -> observed values, document order."""
    observed: dict[tuple[str, str], list[str]] = {}

    def visit(node: ConfigNode, parents: list[str]) -> None:
        for child in node.children:
            if child.children:
                visit(child, parents + [child.label])
            elif child.value is not None and _plain_label(child.label):
                key = ("/".join(parents), child.label)
                observed.setdefault(key, []).append(child.value)

    visit(tree.root, [])
    return observed


def _plain_label(label: str) -> bool:
    """Skip synthetic/attribute labels the scaffold cannot address cleanly."""
    return not label.startswith(("@", "(", "!"))


def render_rules_yaml(rules: list[TreeRule]) -> str:
    """Render scaffolded rules as a multi-document CVL file (listing style:
    one keyword per line, flow lists)."""
    documents: list[str] = []
    for rule in rules:
        lines = [
            f"{key}: {_scalar(value)}" for key, value in rule.raw.items()
        ]
        documents.append("\n".join(lines))
    return "\n---\n".join(documents) + "\n"


def _scalar(value: object) -> str:
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_scalar(item) for item in value) + "]"
    return str(value)
