"""Writing your own CVL rules, and layering deployment overrides.

Run::

    python examples/custom_rules_inheritance.py

Demonstrates the full CVL authoring workflow the paper describes (§3.2):

1. an application team ships a baseline rule file for its service;
2. a deployment team *inherits* that file, overriding one rule's accepted
   value (their load balancer still needs TLSv1.0) and disabling another;
3. both rule sets run against the same entity, showing how the override
   changes the verdicts without copying the baseline.
"""

from repro import ConfigValidator, HostEntity, render_text
from repro.fs import VirtualFilesystem

BASELINE = """\
# Baseline shipped by the application developers.
config_name: ssl_protocols
config_path: ["http/server", "server"]
file_context: ["nginx.conf"]
preferred_value: ["TLSv1.2", "TLSv1.3"]
preferred_value_match: substr,any
non_preferred_value: ["SSLv2", "SSLv3", "TLSv1 "]
non_preferred_value_match: substr,any
not_matched_preferred_value_description: "Legacy TLS protocol enabled."
matched_description: "Modern TLS only."
tags: ["#security", "#ssl"]
---
config_name: server_tokens
config_path: ["http", ""]
file_context: ["nginx.conf"]
preferred_value: ["off"]
preferred_value_match: exact,all
not_present_description: "server_tokens not set; version is disclosed."
matched_description: "Version disclosure off."
tags: ["#security"]
---
config_name: autoindex
config_path: ["http/server", "server"]
file_context: ["nginx.conf"]
preferred_value: ["off"]
preferred_value_match: exact,all
not_present_pass: true
not_present_description: "autoindex defaults to off."
matched_description: "Directory listings off."
tags: ["#security"]
"""

DEPLOYMENT_OVERRIDE = """\
# Deployment-specific layer: starts from the baseline, tweaks two rules.
parent_cvl_file: baseline.yaml
disabled_rules: ["autoindex"]        # this team serves static indexes on purpose
rules:
  - config_name: ssl_protocols
    # Their legacy load balancer still speaks TLSv1; accept it for now.
    non_preferred_value: ["SSLv2", "SSLv3"]
"""

NGINX_CONF = """\
http {
    server_tokens off;
    server {
        listen 443 ssl;
        ssl_protocols TLSv1 TLSv1.2;
        autoindex on;
    }
}
"""


def build_validator(rule_file: str) -> ConfigValidator:
    documents = {"baseline.yaml": BASELINE, "site.yaml": DEPLOYMENT_OVERRIDE}
    validator = ConfigValidator(resolver=documents.__getitem__)
    validator.add_manifest_text(
        f"nginx: {{config_search_paths: [/etc/nginx], cvl_file: {rule_file}}}"
    )
    return validator


def main() -> None:
    fs = VirtualFilesystem()
    fs.write_file("/etc/nginx/nginx.conf", NGINX_CONF)
    entity = HostEntity("edge-proxy", fs)

    print("=== Validating with the developers' baseline ===")
    report = build_validator("baseline.yaml").validate_entity(entity)
    print(render_text(report, verbose=True))

    print("\n=== Validating with the deployment override layered on top ===")
    report = build_validator("site.yaml").validate_entity(entity)
    print(render_text(report, verbose=True))

    print("\nNote how the override accepted TLSv1 and disabled the "
          "autoindex rule\nwithout copying or editing the baseline file.")


if __name__ == "__main__":
    main()
