"""Fleet audit: scan Docker images and running containers at scale.

Run::

    python examples/docker_fleet_audit.py [--images N] [--rate R]

Reproduces the paper's production scenario ("validating on the order of
tens of thousands of containers and images daily"): builds a simulated
registry + container fleet with a seeded misconfiguration rate, validates
every image and container, and prints a per-entity summary plus the top
findings -- the same shape as IBM Vulnerability Advisor's reports.
"""

from __future__ import annotations

import argparse
import collections
import time

from repro import ContainerEntity, DockerImageEntity, load_builtin_validator
from repro.workloads import FleetSpec, build_fleet


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--images", type=int, default=15)
    parser.add_argument("--containers-per-image", type=int, default=4)
    parser.add_argument("--rate", type=float, default=0.35,
                        help="misconfiguration rate (0..1)")
    parser.add_argument("--seed", type=int, default=2017)
    args = parser.parse_args()

    _daemon, images, containers = build_fleet(
        FleetSpec(
            images=args.images,
            containers_per_image=args.containers_per_image,
            misconfig_rate=args.rate,
            seed=args.seed,
        )
    )
    entities = [DockerImageEntity(image) for image in images]
    entities += [ContainerEntity(container) for container in containers]
    print(f"Fleet: {len(images)} images, {len(containers)} containers "
          f"(misconfig rate {args.rate:.0%})\n")

    validator = load_builtin_validator()
    started = time.perf_counter()
    report = validator.validate_entities(entities)
    elapsed = time.perf_counter() - started

    counts = report.counts()
    rate = len(entities) / elapsed
    print(f"Validated {len(entities)} entities "
          f"({counts['total']} checks) in {elapsed:.2f}s "
          f"-> {rate:,.0f} entities/s "
          f"(~{rate * 86_400:,.0f}/day)\n")

    findings = collections.Counter(
        result.rule.name for result in report.failed()
    )
    print("Top findings across the fleet:")
    for rule_name, count in findings.most_common(10):
        print(f"  {count:4d}x {rule_name}")

    # Which entities are worst?
    per_target = collections.Counter(
        result.target for result in report.failed()
    )
    print("\nWorst entities:")
    for target, count in per_target.most_common(5):
        print(f"  {count:3d} findings  {target}")


if __name__ == "__main__":
    main()
