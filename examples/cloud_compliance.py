"""Cross-entity cloud compliance: the paper's Listing 1 scenario, live.

Run::

    python examples/cloud_compliance.py

Builds a small estate -- an OpenStack-style project (with one policy
violation), a database host running MySQL, and an nginx frontend host --
and validates the whole group in one run.  The composite rule from the
paper's Listing 1 spans three entities: MySQL's ssl-ca path, the host's
ip_forward sysctl, and nginx's listener.
"""

from repro import HostEntity, load_builtin_validator, render_text
from repro.fs import VirtualFilesystem
from repro.workloads import build_cloud_project
from repro.workloads.hosts import mysql_cnf, nginx_conf


def database_host() -> HostEntity:
    fs = VirtualFilesystem()
    fs.write_file("/etc/mysql/my.cnf", mysql_cnf(hardened=True), mode=0o644)
    fs.write_file("/etc/mysql/cacert.pem", "---CERT---", mode=0o644)
    fs.write_file("/etc/sysctl.conf", "net.ipv4.ip_forward = 0\n")
    return HostEntity("db-host", fs)


def frontend_host() -> HostEntity:
    fs = VirtualFilesystem()
    fs.write_file("/etc/nginx/nginx.conf", nginx_conf(hardened=True))
    return HostEntity("web-host", fs)


def main() -> None:
    validator = load_builtin_validator()
    cloud = build_cloud_project("production", violations=True)
    report = validator.validate_entities(
        [cloud, database_host(), frontend_host()]
    )

    print(render_text(report, only_failures=True, verbose=True))
    print()

    composite = [
        r for r in report
        if r.rule.name == "mysql ssl-ca path and sysctl and nginx SSL"
    ][0]
    print("Paper Listing 1 composite rule:")
    print(f"  expression: {composite.rule.expression}")
    print(f"  verdict:    {composite.verdict.value}")
    for evidence in composite.evidence:
        print(f"    term {evidence.location} -> {evidence.value}")

    cloud_failures = [r for r in report.failed() if r.entity == "openstack"]
    print(f"\nCloud policy findings: {len(cloud_failures)}")
    for result in cloud_failures:
        print(f"  - {result.rule.name}: {result.message}")


if __name__ == "__main__":
    main()
