"""Operations workflow: snapshot -> validate elsewhere -> track drift.

Run::

    python examples/ops_workflow.py

Shows the frame-based operating model the paper credits for production
deployability ("its ability to work against system configuration frames
allows it to validate systems without requiring any local installation or
remote access"):

1. a collector snapshots a host into a portable JSON frame;
2. a central validator -- a different process, potentially a different
   machine -- validates the frame without touching the host;
3. the next day's snapshot is validated and *diffed*: operators see only
   what regressed, not 170 rows of mostly-unchanged results;
4. the team also scaffolds a golden-config profile for their app so future
   config edits are caught even when no CIS rule covers them.
"""

from repro import Crawler, load_builtin_validator, ubuntu_host_entity
from repro.authoring import render_rules_yaml, scaffold_rules
from repro.crawler.serialize import dump_frame, load_frame
from repro.engine.drift import diff_reports, render_drift
from repro.workloads.hosts import nginx_conf


def main() -> None:
    crawler = Crawler()
    validator = load_builtin_validator()

    # Day 1: snapshot a healthy host and ship the frame off-box.
    day1 = crawler.crawl(
        ubuntu_host_entity("prod-web-7", hardening=1.0, with_nginx=True)
    )
    frame_blob = dump_frame(day1, indent=2)
    print(f"Day 1: captured frame ({len(frame_blob):,} bytes of JSON)")

    # Central validation -- only the JSON travels.
    report_day1 = validator.validate_frame(load_frame(frame_blob))
    print(f"Day 1 verdicts: {report_day1.counts()}\n")

    # Day 2: someone 'temporarily' relaxed sshd and sysctl settings.
    day2 = crawler.crawl(
        ubuntu_host_entity(
            "prod-web-7", hardening=0.7, seed=99, with_nginx=True
        )
    )
    report_day2 = validator.validate_frame(day2)
    print(f"Day 2 verdicts: {report_day2.counts()}\n")

    drift = diff_reports(report_day1, report_day2)
    print(render_drift(drift))

    # Golden-config profile for the team's own application config.
    rules = scaffold_rules(
        nginx_conf(hardened=True), "/etc/nginx/nginx.conf", max_rules=5
    )
    print(
        f"\nScaffolded a golden-config profile "
        f"({len(rules)} rules); first rule:\n"
    )
    print(render_rules_yaml(rules[:1]))


if __name__ == "__main__":
    main()
