"""Quickstart: validate a synthetic Ubuntu host with the shipped packs.

Run::

    python examples/quickstart.py

Builds two synthetic hosts -- one hardened per the CIS packs, one stock
install -- validates both with the shipped 170+ rules across the paper's
11 targets, and prints the reports.
"""

from repro import load_builtin_validator, render_text, ubuntu_host_entity


def main() -> None:
    validator = load_builtin_validator()
    print(f"Loaded {validator.rule_count()} rules across "
          f"{len(validator.manifests())} rule packs.\n")

    for name, hardening in [("hardened-host", 1.0), ("stock-host", 0.0)]:
        entity = ubuntu_host_entity(
            name, hardening=hardening, with_nginx=True, with_mysql=True
        )
        report = validator.validate_entity(entity)
        counts = report.counts()
        print(f"== {name}: {counts['compliant']} passed, "
              f"{counts['noncompliant']} failed ==")
        print(render_text(report, only_failures=True, verbose=True))
        print()


if __name__ == "__main__":
    main()
