"""Compiled rule plans benchmark (ISSUE 6 acceptance gate).

Rules/sec of the planned (fused single-pass) engine against the
per-rule engine (``--no-plan``) at 1x/4x/16x ruleset scale, on the
synthetic keyvalue workload from ``bench_scaling_rules.py``.  The gate
asserts:

* 16x-scaled ruleset: planned throughput >= 2x the per-rule engine;
* 1x ruleset: no regression (plan compilation and dispatch must not
  tax small packs);
* reports stay **byte-identical** between the two engines at
  ``workers=1`` and ``workers=8``.

A plan-stats JSON is written to
``benchmarks/results/rule_plan_stats.json`` for the CI artifact.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.fs import VirtualFilesystem
from repro.crawler import Crawler, HostEntity
from repro.cvl import Manifest
from repro.engine import ConfigValidator, render_text
from repro.workloads import generate_keyvalue_config, generate_tree_rules

from conftest import emit

_BASE_RULES = 60
_SCALES = (1, 4, 16)
_GATE_SCALE = 16
_GATE_SPEEDUP = 2.0

_PLAN_STATS_PATH = (
    pathlib.Path(__file__).parent / "results" / "rule_plan_stats.json"
)


def _frame(keys: int, seed: int = 1):
    fs = VirtualFilesystem()
    fs.write_file(
        "/etc/synthetic/synthetic.conf",
        generate_keyvalue_config(keys, misconfig_rate=0.2, seed=seed),
    )
    return Crawler().crawl(
        HostEntity(f"plan-host-{seed}", fs), features=("files",)
    )


def _validator(rule_count: int, *, use_plans: bool) -> ConfigValidator:
    validator = ConfigValidator(use_plans=use_plans)
    validator.add_ruleset(
        Manifest(
            entity="synthetic",
            cvl_file="<generated>",
            config_search_paths=["/etc/synthetic"],
        ),
        generate_tree_rules(rule_count),
    )
    return validator


def _best_cycle(validator, frame, rounds: int = 5) -> float:
    validator.validate_frame(frame)  # warm parse memos and the plan cache
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        validator.validate_frame(frame)
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.benchmark(group="rule-plan")
def test_planned_16x(benchmark):
    rules = _BASE_RULES * _GATE_SCALE
    validator = _validator(rules, use_plans=True)
    frame = _frame(rules)
    validator.validate_frame(frame)  # warm
    report = benchmark(validator.validate_frame, frame)
    assert len(report) == rules
    assert report.plan is not None and report.plan.rules_fused == rules


@pytest.mark.benchmark(group="rule-plan")
def test_unplanned_16x(benchmark):
    rules = _BASE_RULES * _GATE_SCALE
    validator = _validator(rules, use_plans=False)
    frame = _frame(rules)
    validator.validate_frame(frame)  # warm
    report = benchmark(validator.validate_frame, frame)
    assert len(report) == rules
    assert report.plan is None


def test_rule_plan_speedup_gate(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)  # reporter shim

    lines = [
        "Compiled rule plans vs per-rule engine "
        "(one synthetic keyvalue file, best of 5, workers=1)",
        f"{'scale':>6}{'rules':>7}{'per-rule [ms]':>15}{'planned [ms]':>14}"
        f"{'planned rules/s':>17}{'speedup':>9}",
    ]
    speedups: dict[int, float] = {}
    throughput: dict[int, float] = {}
    plan_dict = None
    for scale in _SCALES:
        rules = _BASE_RULES * scale
        frame = _frame(rules)
        unplanned = _best_cycle(_validator(rules, use_plans=False), frame)
        planned_validator = _validator(rules, use_plans=True)
        planned = _best_cycle(planned_validator, frame)
        if scale == _GATE_SCALE:
            plan_dict = planned_validator.validate_frame(frame).plan.to_dict()
        speedups[scale] = unplanned / planned
        throughput[scale] = rules / planned
        lines.append(
            f"{scale:>5}x{rules:>7}{unplanned * 1e3:>15.2f}"
            f"{planned * 1e3:>14.2f}{throughput[scale]:>17,.0f}"
            f"{speedups[scale]:>8.2f}x"
        )
    emit("rule_plan_scaling", "\n".join(lines))

    _PLAN_STATS_PATH.parent.mkdir(exist_ok=True)
    _PLAN_STATS_PATH.write_text(
        json.dumps(
            {
                "base_rules": _BASE_RULES,
                "speedups": {
                    f"{scale}x": round(value, 2)
                    for scale, value in speedups.items()
                },
                "planned_rules_per_s": {
                    f"{scale}x": round(value)
                    for scale, value in throughput.items()
                },
                "gate_scale": f"{_GATE_SCALE}x",
                "gate_speedup": _GATE_SPEEDUP,
                "plan": plan_dict,
            },
            indent=2,
        )
        + "\n"
    )

    assert speedups[_GATE_SCALE] >= _GATE_SPEEDUP, (
        f"planned engine only {speedups[_GATE_SCALE]:.2f}x the per-rule "
        f"engine on the {_GATE_SCALE}x ruleset (gate: >= {_GATE_SPEEDUP}x)"
    )
    assert speedups[1] >= 1.0, (
        f"planned engine regressed the 1x ruleset "
        f"({speedups[1]:.2f}x vs per-rule)"
    )


def test_rule_plan_byte_identity(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)  # reporter shim
    rules = _BASE_RULES * _GATE_SCALE
    frames = [_frame(rules, seed=seed) for seed in range(8)]
    reference = render_text(
        _validator(rules, use_plans=False).validate_frames(frames, workers=1),
        verbose=True,
    )
    for workers in (1, 8):
        report = _validator(rules, use_plans=True).validate_frames(
            frames, workers=workers
        )
        assert render_text(report, verbose=True) == reference, (
            f"planned report diverged from the per-rule engine "
            f"at workers={workers}"
        )
