"""Experiment E4 -- the paper's production-scale claim (Section 5).

"It has been operational for over a year, and has been validating on the
order of tens of thousands of containers and images daily."

The benchmark validates a generated fleet slice and the report
extrapolates to daily capacity, plus the detection counts a production
dashboard would show.
"""

from __future__ import annotations

import collections
import time

import pytest

from repro.crawler import ContainerEntity, DockerImageEntity
from repro.rules import load_builtin_validator
from repro.workloads import FleetSpec, build_fleet

from conftest import emit

_SPEC = FleetSpec(images=10, containers_per_image=4, misconfig_rate=0.3, seed=42)

#: Throughput of the seed (fully sequential, id()-keyed per-run caches)
#: on this fleet spec, from the seed-committed results/fleet_throughput.txt
#: ("50 entities ... in 0.38s (132 entities/s)").  The speedup report
#: asserts the parallel content-addressed pipeline beats it >= 2x.
_SEED_SEQUENTIAL_THROUGHPUT = 132.0


def _entities():
    _daemon, images, containers = build_fleet(_SPEC)
    return [DockerImageEntity(i) for i in images] + [
        ContainerEntity(c) for c in containers
    ]


@pytest.mark.benchmark(group="fleet")
def test_validate_fleet_slice(benchmark):
    validator = load_builtin_validator()
    entities = _entities()

    report = benchmark(validator.validate_entities, entities)
    assert report.errors() == []
    assert len(report) > 0


@pytest.mark.benchmark(group="fleet")
def test_validate_fleet_slice_parallel(benchmark):
    """The same slice through the workers=4 fan-out path."""
    validator = load_builtin_validator()
    entities = _entities()

    report = benchmark(
        lambda: validator.validate_entities(entities, workers=4)
    )
    assert report.errors() == []
    assert len(report) > 0


@pytest.mark.benchmark(group="fleet")
def test_crawl_only_fleet_slice(benchmark):
    """Extraction-only cost (the crawler half of the pipeline)."""
    from repro.crawler import Crawler

    crawler = Crawler()
    entities = _entities()
    frames = benchmark(crawler.crawl_many, entities)
    assert len(frames) == len(entities)


def test_fleet_capacity_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    from repro.engine.batch import BatchScanner, render_fleet_summary

    validator = load_builtin_validator()
    entities = _entities()
    summary = BatchScanner(validator).scan_entities(entities)
    daily = summary.throughput * 86_400

    lines = [
        "Production-scale extrapolation (paper: 'tens of thousands of "
        "containers and images daily')",
        f"extrapolated capacity: {daily:,.0f} entities/day (single core)",
        "",
        render_fleet_summary(summary, top=5),
    ]
    emit("fleet_throughput", "\n".join(lines))

    # "Tens of thousands daily" needs only ~0.6 entities/s sustained; the
    # in-process engine must clear that by orders of magnitude.
    assert daily > 100_000


@pytest.mark.benchmark(group="fleet")
def test_validate_thousand_containers(benchmark):
    """Paper-scale slice: a four-digit container count in one run."""
    validator = load_builtin_validator(only=["docker_containers"])
    _daemon, _images, containers = build_fleet(
        FleetSpec(images=50, containers_per_image=20, misconfig_rate=0.3,
                  seed=17)
    )
    entities = [ContainerEntity(c) for c in containers]
    assert len(entities) == 1000

    report = benchmark.pedantic(
        validator.validate_entities, args=(entities,), rounds=1, iterations=1
    )
    assert report.errors() == []
    assert len(report) >= 20_000  # ~23 container rules x 1000 containers


def test_parallel_cache_speedup_report(benchmark):
    """Before/after yardstick for the content-addressed parallel pipeline.

    Seed sequential (committed results): 132 entities/s on this spec.
    Acceptance: workers=4 with the shared parse cache >= 2x that, a >= 50%
    parse-cache hit rate on a fleet with 4 containers per image, and a
    parallel report byte-identical to the sequential one.
    """
    benchmark.pedantic(lambda: None, rounds=1)
    from repro.crawler import Crawler
    from repro.engine import render_text

    entities = _entities()
    frames = Crawler().crawl_many(entities, workers=4)

    def cycle(validator, workers):
        """One steady-state scan cycle (packs preloaded)."""
        validator.rule_count()
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            report = validator.validate_frames(frames, workers=workers)
            best = min(best, time.perf_counter() - started)
        return report, len(entities) / best

    seq_validator = load_builtin_validator(cache_size=0)  # cache disabled
    seq_report, seq_throughput = cycle(seq_validator, workers=1)
    par_validator = load_builtin_validator()
    par_report, par_throughput = cycle(par_validator, workers=4)
    stats = par_validator.cache_stats()

    speedup_vs_seed = par_throughput / _SEED_SEQUENTIAL_THROUGHPUT
    lines = [
        "Parallel content-addressed pipeline vs seed sequential "
        f"({len(entities)} entities, {_SPEC.containers_per_image} containers/image)",
        f"{'configuration':<40}{'entities/s':>12}",
        f"{'seed sequential (committed)':<40}{_SEED_SEQUENTIAL_THROUGHPUT:>12,.0f}",
        f"{'this commit, workers=1, cache off':<40}{seq_throughput:>12,.0f}",
        f"{'this commit, workers=4, shared cache':<40}{par_throughput:>12,.0f}",
        f"speedup vs seed sequential: {speedup_vs_seed:.1f}x",
        stats.render(),
    ]
    emit("fleet_parallel_speedup", "\n".join(lines))

    assert speedup_vs_seed >= 2.0
    assert stats.hit_rate >= 0.5
    assert render_text(seq_report, verbose=True) == render_text(
        par_report, verbose=True
    )
