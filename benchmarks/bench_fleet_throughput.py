"""Experiment E4 -- the paper's production-scale claim (Section 5).

"It has been operational for over a year, and has been validating on the
order of tens of thousands of containers and images daily."

The benchmark validates a generated fleet slice and the report
extrapolates to daily capacity, plus the detection counts a production
dashboard would show.
"""

from __future__ import annotations

import collections
import time

import pytest

from repro.crawler import ContainerEntity, DockerImageEntity
from repro.rules import load_builtin_validator
from repro.workloads import FleetSpec, build_fleet

from conftest import emit

_SPEC = FleetSpec(images=10, containers_per_image=4, misconfig_rate=0.3, seed=42)


def _entities():
    _daemon, images, containers = build_fleet(_SPEC)
    return [DockerImageEntity(i) for i in images] + [
        ContainerEntity(c) for c in containers
    ]


@pytest.mark.benchmark(group="fleet")
def test_validate_fleet_slice(benchmark):
    validator = load_builtin_validator()
    entities = _entities()

    report = benchmark(validator.validate_entities, entities)
    assert report.errors() == []
    assert len(report) > 0


@pytest.mark.benchmark(group="fleet")
def test_crawl_only_fleet_slice(benchmark):
    """Extraction-only cost (the crawler half of the pipeline)."""
    from repro.crawler import Crawler

    crawler = Crawler()
    entities = _entities()
    frames = benchmark(crawler.crawl_many, entities)
    assert len(frames) == len(entities)


def test_fleet_capacity_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    from repro.engine.batch import BatchScanner, render_fleet_summary

    validator = load_builtin_validator()
    entities = _entities()
    summary = BatchScanner(validator).scan_entities(entities)
    daily = summary.throughput * 86_400

    lines = [
        "Production-scale extrapolation (paper: 'tens of thousands of "
        "containers and images daily')",
        f"extrapolated capacity: {daily:,.0f} entities/day (single core)",
        "",
        render_fleet_summary(summary, top=5),
    ]
    emit("fleet_throughput", "\n".join(lines))

    # "Tens of thousands daily" needs only ~0.6 entities/s sustained; the
    # in-process engine must clear that by orders of magnitude.
    assert daily > 100_000


@pytest.mark.benchmark(group="fleet")
def test_validate_thousand_containers(benchmark):
    """Paper-scale slice: a four-digit container count in one run."""
    validator = load_builtin_validator(only=["docker_containers"])
    _daemon, _images, containers = build_fleet(
        FleetSpec(images=50, containers_per_image=20, misconfig_rate=0.3,
                  seed=17)
    )
    entities = [ContainerEntity(c) for c in containers]
    assert len(entities) == 1000

    report = benchmark.pedantic(
        validator.validate_entities, args=(entities,), rounds=1, iterations=1
    )
    assert report.errors() == []
    assert len(report) >= 20_000  # ~23 container rules x 1000 containers
