"""Ablation A1 -- rule-count scaling of the declarative engine.

DESIGN.md calls out the design choice of caching normalized trees per
run: rule evaluation should scale linearly in the number of rules with a
flat parsing cost, not reparse per rule.  The sweep validates that shape.
"""

from __future__ import annotations

import time

import pytest

from repro.fs import VirtualFilesystem
from repro.crawler import Crawler, HostEntity
from repro.cvl import Manifest
from repro.engine import ConfigValidator
from repro.workloads import generate_keyvalue_config, generate_tree_rules

from conftest import emit

_CONFIG = generate_keyvalue_config(600, misconfig_rate=0.2, seed=1)


def _frame():
    fs = VirtualFilesystem()
    fs.write_file("/etc/synthetic/synthetic.conf", _CONFIG)
    return Crawler().crawl(HostEntity("scaling-host", fs), features=("files",))


def _validator(rule_count: int) -> ConfigValidator:
    validator = ConfigValidator()
    validator.add_ruleset(
        Manifest(
            entity="synthetic",
            cvl_file="<generated>",
            config_search_paths=["/etc/synthetic"],
        ),
        generate_tree_rules(rule_count),
    )
    return validator


@pytest.mark.parametrize("rule_count", [10, 50, 200, 500])
@pytest.mark.benchmark(group="scaling-rules")
def test_scaling_rule_count(benchmark, rule_count):
    validator = _validator(rule_count)
    frame = _frame()
    report = benchmark(validator.validate_frame, frame)
    assert len(report) == rule_count


def test_scaling_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    frame = _frame()
    lines = [
        "Rule-count scaling (one 600-key file, cached normalization)",
        f"{'rules':>6}{'time [ms]':>12}{'ms/rule':>10}",
    ]
    timings = {}
    for rule_count in (10, 50, 200, 500):
        validator = _validator(rule_count)
        validator.validate_frame(frame)  # warm the parse-free path check
        started = time.perf_counter()
        for _ in range(3):
            validator.validate_frame(frame)
        elapsed = (time.perf_counter() - started) / 3
        timings[rule_count] = elapsed
        lines.append(
            f"{rule_count:>6}{elapsed * 1e3:>12.2f}"
            f"{elapsed * 1e3 / rule_count:>10.3f}"
        )
    emit("scaling_rules", "\n".join(lines))

    # Sub-linear-per-rule at the low end (flat parse cost amortized),
    # roughly linear overall: 50x rules must cost far less than 200x time.
    assert timings[500] < timings[10] * 150


# ---- A4: normalization-cache ablation -------------------------------------


def _evaluate_rules(frame, rules, *, shared_normalizer: bool):
    """Evaluate tree rules with one shared Normalizer or a fresh one per
    rule (modelling an engine that re-parses the file for every rule)."""
    from repro.cvl import Manifest
    from repro.engine.evaluators import evaluate_tree
    from repro.engine.normalizer import Normalizer

    manifest = Manifest(
        entity="synthetic",
        cvl_file="<generated>",
        config_search_paths=["/etc/synthetic"],
    )
    normalizer = Normalizer()
    results = []
    for rule in rules:
        if not shared_normalizer:
            normalizer = Normalizer()
        results.append(evaluate_tree(rule, frame, manifest, normalizer))
    return results


@pytest.mark.benchmark(group="normalizer-cache")
def test_cached_normalization(benchmark):
    frame = _frame()
    rules = list(generate_tree_rules(200))
    results = benchmark(_evaluate_rules, frame, rules, shared_normalizer=True)
    assert len(results) == 200


@pytest.mark.benchmark(group="normalizer-cache")
def test_uncached_normalization(benchmark):
    frame = _frame()
    rules = list(generate_tree_rules(200))
    results = benchmark.pedantic(
        _evaluate_rules,
        args=(frame, rules),
        kwargs={"shared_normalizer": False},
        rounds=5,
    )
    assert len(results) == 200


def test_cache_ablation_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    frame = _frame()
    rules = list(generate_tree_rules(200))

    def timed(shared):
        started = time.perf_counter()
        for _ in range(3):
            _evaluate_rules(frame, rules, shared_normalizer=shared)
        return (time.perf_counter() - started) / 3

    warm = timed(True)
    cold = timed(False)
    lines = [
        "Normalization-cache ablation (200 rules, one 600-key file)",
        f"shared normalizer (cached):   {warm * 1e3:8.2f} ms",
        f"per-rule normalizer (uncached): {cold * 1e3:6.2f} ms",
        f"speedup from caching:         {cold / warm:8.1f}x",
    ]
    emit("normalizer_cache", "\n".join(lines))
    assert cold > 5 * warm  # caching must matter at this rule count
