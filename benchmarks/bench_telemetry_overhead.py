"""Experiment E9 -- cost of observability: telemetry on vs off.

The telemetry subsystem promises near-zero cost when disabled (no-op
collectors) and low single-digit-percent overhead when enabled (spans,
counters, histograms, and the rule profiler all record on the hot
per-rule path).  This experiment measures both claims on a fleet
validation over pre-crawled frames, and doubles as the regression gate:
``test_telemetry_overhead_gate`` fails if enabling telemetry costs more
than 5%, or if it changes a single byte of the report.
"""

from __future__ import annotations

import gc
import statistics
import time

import pytest

from repro.crawler import ContainerEntity, Crawler, DockerImageEntity
from repro.engine import render_text
from repro.rules import load_builtin_validator
from repro.telemetry import Telemetry
from repro.workloads import FleetSpec, build_fleet

from conftest import emit

#: Interleaved timing rounds per batch; best-of CPU time filters noise.
ROUNDS = 30
#: Extra measurement batches granted before an over-budget verdict sticks.
BATCHES = 3
#: Enabled-telemetry cost ceiling per scan cycle.
BUDGET = 0.05


def _frames():
    _daemon, images, containers = build_fleet(
        FleetSpec(images=4, containers_per_image=3, misconfig_rate=0.5)
    )
    entities = [ContainerEntity(c) for c in containers]
    entities += [DockerImageEntity(i) for i in images]
    return Crawler().crawl_many(entities)


@pytest.mark.benchmark(group="telemetry")
def test_validate_frames_plain(benchmark):
    frames = _frames()
    validator = load_builtin_validator()
    report = benchmark(validator.validate_frames, frames)
    assert len(report) > 100


@pytest.mark.benchmark(group="telemetry")
def test_validate_frames_telemetry(benchmark):
    frames = _frames()
    validator = load_builtin_validator(telemetry=Telemetry())
    report = benchmark(validator.validate_frames, frames)
    assert len(report) > 100


def _timed(fn):
    """One settled measurement of CPU time.

    ``process_time`` instead of wall clock: the instrumentation cost
    being gated is pure CPU work, and CPU time is immune to the
    scheduler preemption that dominates wall-clock variance on a shared
    machine.  GC runs between measurements, never inside them (the same
    policy pytest-benchmark applies), so collection timing doesn't land
    on either side of the A/B.
    """
    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        result = fn()
        return time.process_time() - started, result
    finally:
        gc.enable()


def test_telemetry_overhead_gate(benchmark):
    """Enabled telemetry: < 5% slower per cycle, byte-identical report."""
    benchmark.pedantic(lambda: None, rounds=1)  # reporter shim
    frames = _frames()
    plain = load_builtin_validator()
    telemetry = Telemetry()
    instrumented = load_builtin_validator(telemetry=telemetry)
    # Warm both validators (pack loading, parse cache) outside the
    # timed region.
    plain.validate_frames(frames)
    instrumented.validate_frames(frames)

    def run_off():
        return plain.validate_frames(frames)

    def run_on():
        # One steady-state cycle of a resident scanner: clear the spans
        # the previous cycle exported, scrape the metrics (which pays
        # the deferred per-rule tally), validate.  This charges the
        # telemetry side everything a per-cycle export actually costs,
        # not just the hot-path appends.
        telemetry.spans.clear()
        telemetry.metrics.collect()
        return instrumented.validate_frames(frames)

    # Interleave and alternate the A/B order every round so load drift
    # and position bias cancel, then estimate the overhead two ways:
    #
    # * best-of -- the minimum CPU time of each side.  The workload is
    #   deterministic, so (as the timeit docs put it) the minimum is the
    #   machine running undisturbed; robust against *bursty* noise.
    # * median paired ratio -- on/off of each back-to-back round.
    #   Robust against *sustained uniform* load, where both sides are
    #   slowed proportionally and minima become asymmetric lottery
    #   draws.
    #
    # Each regime corrupts the other estimator, so the gate takes the
    # smaller of the two; a real regression inflates both.  A verdict
    # over budget escalates to more rounds (up to BATCHES, with a pause
    # for transient load to pass) instead of failing outright.
    off_times: list[float] = []
    on_times: list[float] = []
    ratios: list[float] = []
    report_off = report_on = None
    overhead = float("inf")
    for batch in range(BATCHES):
        if batch:
            time.sleep(2.0)
        for round_index in range(ROUNDS):
            pair = [("off", run_off), ("on", run_on)]
            if round_index % 2:
                pair.reverse()
            elapsed = {}
            for side, fn in pair:
                elapsed[side], report = _timed(fn)
                if side == "off":
                    report_off = report
                else:
                    report_on = report
            off_times.append(elapsed["off"])
            on_times.append(elapsed["on"])
            ratios.append(elapsed["on"] / elapsed["off"])
            # Aggregate the cycle's deferred profile between rounds --
            # read-time cost by design, and it keeps the pending queue
            # (which holds result references) from growing monotonically
            # across rounds and skewing later samples.
            telemetry.profiler.entries()
        best_of = (min(on_times) - min(off_times)) / min(off_times)
        paired = statistics.median(ratios) - 1.0
        overhead = min(best_of, paired)
        if overhead < BUDGET:
            break
    best_off, best_on = min(off_times), min(on_times)
    emit(
        "telemetry_overhead",
        "\n".join([
            "Telemetry overhead (fleet validation, "
            f"{len(off_times)} interleaved rounds)",
            f"{'telemetry off':<16}{best_off * 1e3:>10.2f} ms"
            f"  (median {statistics.median(off_times) * 1e3:.2f})",
            f"{'telemetry on':<16}{best_on * 1e3:>10.2f} ms"
            f"  (median {statistics.median(on_times) * 1e3:.2f})",
            f"{'best-of':<16}{best_of:>10.1%}",
            f"{'median paired':<16}{paired:>10.1%}",
            f"{'overhead':<16}{overhead:>10.1%}",
            f"spans per cycle: {len(telemetry.spans)}",
        ]),
    )
    assert render_text(report_on) == render_text(report_off)
    assert overhead < BUDGET, (
        f"telemetry overhead {overhead:.1%} exceeds the "
        f"{BUDGET:.0%} budget"
    )
