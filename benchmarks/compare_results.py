#!/usr/bin/env python
"""Benchmark regression gate for the fleet pipeline (``make bench-check``).

Runs the two pipeline benchmarks (``bench_fleet_throughput`` and
``bench_pipeline_stages``) under ``pytest-benchmark``, writes the raw
JSON next to the human-readable tables in ``benchmarks/results/``, and
compares per-benchmark throughput (ops/s) against the committed baseline.
Any benchmark more than ``--tolerance`` (default 25%) slower than its
baseline fails the run.

Refresh the baseline after an intentional performance change::

    python benchmarks/compare_results.py --update-baseline

and commit ``benchmarks/results/bench_baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINE_PATH = RESULTS_DIR / "bench_baseline.json"
LATEST_PATH = RESULTS_DIR / "bench_latest.json"

BENCH_FILES = (
    "bench_fleet_throughput.py",
    "bench_pipeline_stages.py",
    "bench_telemetry_overhead.py",
    # Also enforces its own absolute gates (>= 5x unchanged-fleet
    # speedup, bounded cold-cycle overhead) via in-test assertions.
    "bench_incremental.py",
    # Enforces the <5% history-store write-overhead budget (ISSUE 4)
    # via an in-test assertion.
    "bench_history.py",
    # Also enforces its own absolute gates (>= 2x planned throughput on
    # the 16x ruleset, no 1x regression, planned vs --no-plan
    # byte-identity at workers 1 and 8) via in-test assertions.
    "bench_rule_plan.py",
    # Enforces the <= 5% provenance-on overhead budget and off-mode
    # byte-identity (ISSUE 7) via in-test assertions.
    "bench_provenance.py",
    # Enforces the executor gates (ISSUE 8): warm-store cold-process
    # cycle >= 3x a storeless one, process >= 2x thread at 8 workers
    # (on >= 4 cores), byte-identical reports across backends.
    "bench_executor.py",
    # Enforces the <= 5% cross-process trace-fabric overhead budget
    # (ISSUE 9) and on/off byte-identity via in-test assertions.
    "bench_trace.py",
    # Enforces the <= 2% armed-null-plan chaos-fabric overhead budget
    # (ISSUE 10) and armed/disarmed byte-identity via in-test assertions.
    "bench_chaos.py",
)

#: Benchmarks faster than this are no-op reporter shims
#: (``benchmark.pedantic(lambda: None)``) whose timing is pure noise.
MIN_MEANINGFUL_MEAN_S = 1e-4


def run_benchmarks(json_path: pathlib.Path) -> None:
    """Run each benchmark file in its own interpreter, merging the
    pytest-benchmark JSON.

    Process isolation keeps one file's heap growth and GC state from
    skewing another's timings -- the in-test gates (telemetry,
    incremental, history) measure millisecond windows that a shared
    long-running process visibly distorts.
    """
    merged: dict | None = None
    for name in BENCH_FILES:
        part_path = RESULTS_DIR / f".bench_part_{name}.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            str(BENCH_DIR / name),
            "--benchmark-only",
            f"--benchmark-json={part_path}",
            "-q",
        ]
        print(f"$ {' '.join(command)}")
        completed = subprocess.run(command, cwd=REPO_ROOT)
        if completed.returncode != 0:
            sys.exit(
                f"benchmark run failed for {name} "
                f"(exit {completed.returncode})"
            )
        payload = json.loads(part_path.read_text())
        part_path.unlink()
        if merged is None:
            merged = payload
        else:
            merged["benchmarks"].extend(payload.get("benchmarks", []))
    json_path.write_text(json.dumps(merged, indent=2))


def load_ops(json_path: pathlib.Path) -> dict[str, float]:
    """Map fully-qualified benchmark name -> throughput (ops/s)."""
    payload = json.loads(json_path.read_text())
    ops: dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        stats = bench.get("stats", {})
        mean = stats.get("mean", 0.0)
        if mean < MIN_MEANINGFUL_MEAN_S:
            continue  # reporter shim, not a real measurement
        ops[bench["fullname"]] = stats["ops"]
    return ops


def compare(baseline: dict[str, float], current: dict[str, float],
            tolerance: float) -> list[str]:
    """Return a list of human-readable regression descriptions."""
    regressions: list[str] = []
    width = max((len(name) for name in baseline), default=0)
    print(f"\n{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in sorted(baseline):
        base_ops = baseline[name]
        cur_ops = current.get(name)
        if cur_ops is None:
            regressions.append(f"{name}: benchmark disappeared")
            continue
        delta = (cur_ops - base_ops) / base_ops
        marker = "  << REGRESSION" if delta < -tolerance else ""
        print(
            f"{name:<{width}}  {base_ops:>10.1f}/s  {cur_ops:>10.1f}/s  "
            f"{delta:+7.1%}{marker}"
        )
        if delta < -tolerance:
            regressions.append(
                f"{name}: {cur_ops:.1f} ops/s vs baseline "
                f"{base_ops:.1f} ops/s ({delta:+.1%}, "
                f"tolerance -{tolerance:.0%})"
            )
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  {'(new)':>12}  {current[name]:>10.1f}/s")
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="maximum allowed throughput drop (fraction, default 0.25)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the fresh results as the new committed baseline",
    )
    parser.add_argument(
        "--json", type=pathlib.Path, default=None,
        help="reuse an existing pytest-benchmark JSON instead of running",
    )
    args = parser.parse_args(argv)

    RESULTS_DIR.mkdir(exist_ok=True)
    if args.json is not None:
        json_path = args.json
    else:
        json_path = LATEST_PATH
        run_benchmarks(json_path)
    current = load_ops(json_path)
    if not current:
        sys.exit("no meaningful benchmarks in the results JSON")

    if args.update_baseline:
        BASELINE_PATH.write_text(json_path.read_text())
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        sys.exit(
            f"no committed baseline at {BASELINE_PATH}; "
            "run with --update-baseline first"
        )
    baseline = load_ops(BASELINE_PATH)
    regressions = compare(baseline, current, args.tolerance)
    if regressions:
        print("\nthroughput regressions detected:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
