"""Experiment E3 -- paper Listing 6: encoding effort per rule.

Paper (the "Disable SSH Root Login" rule):

    XCCDF/OVAL       45 lines
    ConfigValidator  10 lines
    Chef Inspec       6 lines (expected) / 7 lines (observed)

The report regenerates those per-format sizes for the root-login rule and
the mean over all 40 common rules; the benchmark component times the
XCCDF/OVAL document generation (the mechanical cost of the verbose
format).
"""

from __future__ import annotations

import pytest

from repro.baselines.common_rules import TABLE2_RULES
from repro.baselines.loc import encoding_report, mean_sizes
from repro.baselines.xccdf import generate_oval, generate_xccdf

from conftest import emit


@pytest.mark.benchmark(group="listing6")
def test_generate_xccdf_documents(benchmark):
    def generate():
        return generate_xccdf(list(TABLE2_RULES)), generate_oval(list(TABLE2_RULES))

    xccdf_text, oval_text = benchmark(generate)
    assert "textfilecontent54_object" in oval_text
    assert xccdf_text.count("<Rule ") == 40


@pytest.mark.benchmark(group="listing6")
def test_encoding_report_generation(benchmark):
    report = benchmark(encoding_report, list(TABLE2_RULES))
    assert len(report) == 40


def test_listing6_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    report = encoding_report(list(TABLE2_RULES))
    root_login = next(e for e in report if e.rule_id == "cis-5.2.8")
    means = mean_sizes(report)

    lines = [
        "Listing 6 -- rule encoding size (non-blank lines per rule)",
        f"{'Format':<22}{'paper':>7}{'root-login':>12}{'mean(40)':>10}",
        f"{'XCCDF/OVAL':<22}{'45':>7}{root_login.xccdf_oval:>12}"
        f"{means['xccdf_oval']:>10.1f}",
        f"{'ConfigValidator CVL':<22}{'10':>7}{root_login.cvl:>12}"
        f"{means['cvl']:>10.1f}",
        f"{'Inspec (expected)':<22}{'6':>7}{root_login.inspec_dsl:>12}"
        f"{means['inspec_dsl']:>10.1f}",
        f"{'Inspec (observed)':<22}{'7':>7}{root_login.inspec_bash:>12}"
        f"{means['inspec_bash']:>10.1f}",
        f"{'ad-hoc script':<22}{'-':>7}{root_login.script:>12}"
        f"{means['script']:>10.1f}",
    ]
    emit("listing6", "\n".join(lines))

    # Paper's qualitative claims:
    assert root_login.xccdf_oval > 2.5 * root_login.cvl
    assert root_login.inspec_dsl < root_login.cvl
    assert 8 <= root_login.cvl <= 14   # paper: 10
