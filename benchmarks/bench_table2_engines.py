"""Experiment E2 -- paper Table 2: the same 40 CIS rules under 4 engines.

Paper numbers (avg time to run 40 rules):

    ConfigValidator (YAML / Python)    1.92 s
    Chef Inspec     (Ruby / Ruby)      1.25 s
    CIS-CAT         (XCCDF/OVAL, Java) 14.5 s
    OpenSCAP*       (XCCDF/OVAL, C)    0.4 s   (*different 40 rules)

All engines here are in-process Python, so absolute times shrink by the
interpreter-vs-interpreter factor; the *shape* to verify is the ordering
(OpenSCAP fastest of the spec-driven engines, Inspec and ConfigValidator
the same order of magnitude, CIS-CAT the outlier dominated by startup)
and CIS-CAT's large multiple over ConfigValidator.

Run ``pytest benchmarks/bench_table2_engines.py --benchmark-only`` and
read ``benchmarks/results/table2.txt``.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.common_rules import TABLE2_RULES, openscap_guide_rules
from repro.baselines.cvl_runner import ConfigValidatorEngine
from repro.baselines.inspec import InspecEngine
from repro.baselines.scripts import AdHocScriptEngine
from repro.baselines.xccdf import CisCatEngine, OpenScapEngine, generate_oval, generate_xccdf

from conftest import emit

_XCCDF = generate_xccdf(list(TABLE2_RULES))
_OVAL = generate_oval(list(TABLE2_RULES))
_SSG_RULES = openscap_guide_rules()
_SSG_XCCDF = generate_xccdf(list(_SSG_RULES))
_SSG_OVAL = generate_oval(list(_SSG_RULES))


def _run_configvalidator(frame):
    return ConfigValidatorEngine().run(TABLE2_RULES, frame)


def _run_inspec(frame):
    return InspecEngine("bash").run(TABLE2_RULES, frame)


def _run_inspec_dsl(frame):
    return InspecEngine("dsl").run(TABLE2_RULES, frame)


def _run_ciscat(frame):
    return CisCatEngine().run(_XCCDF, _OVAL, frame)


def _run_openscap(frame):
    # As in the paper: OpenSCAP runs its own 40 Ubuntu-guide rules.
    return OpenScapEngine().run(_SSG_XCCDF, _SSG_OVAL, frame)


def _run_scripts(frame):
    return AdHocScriptEngine().run(TABLE2_RULES, frame)


@pytest.mark.benchmark(group="table2")
def test_configvalidator_40_rules(benchmark, hardened_frame):
    results = benchmark(_run_configvalidator, hardened_frame)
    assert len(results) == 40 and all(r.passed for r in results)


@pytest.mark.benchmark(group="table2")
def test_chef_inspec_40_rules(benchmark, hardened_frame):
    results = benchmark(_run_inspec, hardened_frame)
    assert len(results) == 40 and all(r.passed for r in results)


@pytest.mark.benchmark(group="table2")
def test_chef_inspec_dsl_40_rules(benchmark, hardened_frame):
    results = benchmark(_run_inspec_dsl, hardened_frame)
    assert len(results) == 40 and all(r.passed for r in results)


@pytest.mark.benchmark(group="table2")
def test_ciscat_40_rules(benchmark, hardened_frame):
    results = benchmark.pedantic(
        _run_ciscat, args=(hardened_frame,), rounds=3, iterations=1
    )
    assert len(results) == 40 and all(r.passed for r in results)


@pytest.mark.benchmark(group="table2")
def test_openscap_40_rules(benchmark, hardened_frame):
    results = benchmark(_run_openscap, hardened_frame)
    assert len(results) == 40


@pytest.mark.benchmark(group="table2")
def test_adhoc_scripts_40_rules(benchmark, hardened_frame):
    results = benchmark(_run_scripts, hardened_frame)
    assert len(results) == 40 and all(r.passed for r in results)


def test_table2_report(benchmark, hardened_frame):
    benchmark.pedantic(lambda: None, rounds=1)
    """Regenerate the Table 2 rows (mean over repetitions) with the
    paper's numbers alongside."""
    engines = [
        ("ConfigValidator", "YAML", "Python", _run_configvalidator, 1.92),
        ("Chef Inspec", "Ruby", "Ruby", _run_inspec, 1.25),
        ("CIS-CAT", "XCCDF/OVAL", "Java", _run_ciscat, 14.5),
        ("OpenSCAP*", "XCCDF/OVAL", "C", _run_openscap, 0.4),
    ]
    measured: dict[str, float] = {}
    for name, _spec, _impl, run, _paper in engines:
        repetitions = 3 if name == "CIS-CAT" else 10
        started = time.perf_counter()
        for _ in range(repetitions):
            run(hardened_frame)
        measured[name] = (time.perf_counter() - started) / repetitions

    lines = [
        "Table 2 -- comparison across validation tools (40 rules/run)",
        f"{'Tool':<17}{'Spec language':<14}{'Impl':<8}"
        f"{'paper [s]':>10}{'measured [s]':>14}{'rel. to CV':>12}",
    ]
    cv_time = measured["ConfigValidator"]
    for name, spec, impl, _run, paper in engines:
        lines.append(
            f"{name:<17}{spec:<14}{impl:<8}{paper:>10.2f}"
            f"{measured[name]:>14.4f}{measured[name] / cv_time:>11.2f}x"
        )
    lines.append("*: OpenSCAP was run against different rules than the others")
    emit("table2", "\n".join(lines))

    # Shape assertions mirroring the paper's qualitative findings:
    assert measured["CIS-CAT"] > 3 * measured["ConfigValidator"], (
        "CIS-CAT must be the startup-dominated outlier"
    )
    assert measured["OpenSCAP*"] < measured["ConfigValidator"], (
        "the thin OVAL evaluator must beat the declarative engine"
    )
    assert measured["Chef Inspec"] < measured["CIS-CAT"]
