"""Provenance overhead benchmark (ISSUE 7 acceptance gate).

Provenance records are built post-hoc from evidence the engine already
collects, so the enabled mode should cost a few percent at most.  The
gate asserts:

* a ``--provenance`` scan cycle costs <= 5% over a plain cycle of the
  same fleet (interleaved best-of-N so both modes sample the same
  machine noise, workers=1 so the measurement is not masked by thread
  scheduling);
* provenance-off output stays byte-identical to the provenance-capable
  engine's output (the records must be invisible when not requested).

A provenance stats JSON (records, anchors, spans resolved) is written to
``benchmarks/results/provenance_stats.json`` for the CI artifact.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time

import pytest

from repro.crawler import ContainerEntity, Crawler, DockerImageEntity
from repro.crawler.serialize import dump_frame, load_frame
from repro.engine import render_text
from repro.rules import load_builtin_validator
from repro.workloads import FleetSpec, build_fleet, ubuntu_host_entity

from conftest import emit

#: Same fleet shape as bench_incremental: container breadth plus
#: config-heavy Ubuntu hosts, where anchor extraction has real work.
_SPEC = FleetSpec(images=6, containers_per_image=4, misconfig_rate=0.3,
                  seed=42)
_HOSTS = 10

#: The acceptance gate: provenance-on cycle <= 5% over provenance-off.
_MAX_OVERHEAD = 1.05

_STATS_PATH = (
    pathlib.Path(__file__).parent / "results" / "provenance_stats.json"
)


def _blobs() -> list[str]:
    _daemon, images, containers = build_fleet(_SPEC)
    entities = [DockerImageEntity(i) for i in images] + [
        ContainerEntity(c) for c in containers
    ]
    entities += [
        ubuntu_host_entity(f"bench-host-{i}", hardening=0.5, seed=i,
                           with_nginx=True, with_mysql=True)
        for i in range(_HOSTS)
    ]
    return [dump_frame(f) for f in Crawler().crawl_many(entities, workers=4)]


def _timed_cycle(blobs, *, provenance: bool):
    """One scan cycle: rebuild frames (untimed), validate (timed).

    The gate compares a few-percent delta on a shared box, so the timed
    region uses CPU time (immune to scheduler preemption, the dominant
    wall-clock noise here) and pays accumulated garbage outside the
    window -- the on-mode's extra allocations must not shift whole-heap
    collections into its own samples.
    """
    frames = [load_frame(blob) for blob in blobs]
    validator = load_builtin_validator(provenance=provenance)
    validator.rule_count()  # preload packs outside the timed region
    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        report = validator.validate_frames(frames, workers=1)
        elapsed = time.process_time() - started
    finally:
        gc.enable()
    return elapsed, report


#: Interleaved measurement rounds per batch.  Off/on cycles alternate so
#: both modes sample the same machine-noise profile; the minimum of each
#: side then estimates its true cost (noise is strictly additive).
#: Non-interleaved best-of-3 was measured swinging the ratio
#: 0.73x-1.19x on a busy box.
_ROUNDS = 7

#: Escalation: if the pooled ratio is still over the gate after a batch,
#: measure another batch (the pooled minima keep converging toward the
#: true costs) up to this many batches before failing.  A genuine
#: regression -- eager record construction measured 1.25x-1.35x --
#: stays over the gate no matter how many samples accumulate.
_MAX_BATCHES = 5


def _measure_overhead(blobs) -> tuple[float, float, float, object, object]:
    """(overhead, off_s, on_s, off_report, on_report), pooled best-of-N."""
    off_best = on_best = float("inf")
    off_report = on_report = None
    overhead = float("inf")
    for _batch in range(_MAX_BATCHES):
        for _ in range(_ROUNDS):
            elapsed, report = _timed_cycle(blobs, provenance=False)
            if elapsed < off_best:
                off_best, off_report = elapsed, report
            elapsed, report = _timed_cycle(blobs, provenance=True)
            if elapsed < on_best:
                on_best, on_report = elapsed, report
        overhead = on_best / off_best
        if overhead <= _MAX_OVERHEAD:
            break
    return overhead, off_best, on_best, off_report, on_report


@pytest.mark.benchmark(group="provenance")
def test_provenance_off_cycle(benchmark):
    """Reference: the fleet through a provenance-capable engine, off."""
    blobs = _blobs()
    frames = [load_frame(blob) for blob in blobs]
    validator = load_builtin_validator()
    validator.rule_count()

    report = benchmark(validator.validate_frames, frames, workers=1)
    assert len(report) > 0


@pytest.mark.benchmark(group="provenance")
def test_provenance_on_cycle(benchmark):
    """The same fleet with record construction on every verdict."""
    blobs = _blobs()
    frames = [load_frame(blob) for blob in blobs]
    validator = load_builtin_validator(provenance=True)
    validator.rule_count()

    report = benchmark(validator.validate_frames, frames, workers=1)
    assert all(r.provenance is not None for r in report.results)


def test_provenance_overhead_gate(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)  # reporter shim
    blobs = _blobs()

    _timed_cycle(blobs, provenance=False)  # warm parse caches
    overhead, off_time, on_time, off_report, on_report = (
        _measure_overhead(blobs)
    )

    records = [r.provenance for r in on_report.results]
    anchors = sum(len(rec.anchors) for rec in records if rec)
    spanned = sum(
        1
        for rec in records
        if rec
        for anchor in rec.anchors
        if anchor.span is not None
    )
    failing = [r for r in on_report.results if not r.passed]

    lines = [
        f"Provenance overhead, {len(blobs)}-entity fleet "
        f"(pooled interleaved best-of-{_ROUNDS} batches, workers=1)",
        f"{'cycle':<36}{'seconds':>10}{'vs off':>10}",
        f"{'provenance off':<36}{off_time:>10.4f}{'1.0x':>10}",
        f"{'provenance on':<36}{on_time:>10.4f}{overhead:>9.2f}x",
        f"records: {len(records)}  anchors: {anchors}  "
        f"with spans: {spanned}",
    ]
    emit("provenance_overhead", "\n".join(lines))

    _STATS_PATH.parent.mkdir(exist_ok=True)
    _STATS_PATH.write_text(
        json.dumps(
            {
                "fleet_entities": len(blobs),
                "overhead_ratio": round(overhead, 3),
                "results": len(records),
                "records": sum(1 for rec in records if rec),
                "anchors": anchors,
                "anchors_with_spans": spanned,
                "failing_results": len(failing),
            },
            indent=2,
        )
        + "\n"
    )

    # Records must be invisible when not requested.
    assert render_text(on_report, verbose=True) == render_text(
        off_report, verbose=True
    )
    assert overhead <= _MAX_OVERHEAD, (
        f"provenance-on cycle {overhead:.3f}x a plain cycle "
        f"(gate: <= {_MAX_OVERHEAD}x)"
    )
