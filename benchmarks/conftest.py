"""Shared fixtures and reporting helpers for the benchmark harness.

Every experiment writes its human-readable table to
``benchmarks/results/<name>.txt`` *and* prints it (visible with ``-s``),
so paper-vs-measured comparisons in EXPERIMENTS.md can be regenerated
with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.crawler import Crawler
from repro.workloads import ubuntu_host_entity

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Write a result table to disk and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")


@pytest.fixture(scope="session")
def hardened_frame():
    entity = ubuntu_host_entity(
        "bench-host", hardening=1.0, with_nginx=True, with_mysql=True
    )
    return Crawler().crawl(entity)


@pytest.fixture(scope="session")
def partially_hardened_frame():
    entity = ubuntu_host_entity("bench-host-mixed", hardening=0.6, seed=7)
    return Crawler().crawl(entity)
