"""Executor backend benchmark (ISSUE 8 acceptance gates).

Thread vs process backends at 1/4/8 workers on a CPU-bound synthetic
fleet, and warm vs cold artifact store under cold worker processes.
The fleet is deliberately parse-heavy: Kubernetes nodes whose static
pod manifests carry hundreds of unique annotation lines, so YAML lens
parsing (the slowest lens by an order of magnitude) dominates the
cycle and the GIL actually binds the thread backend.

Gates asserted inside ``test_executor_speedup_gate``:

* reports are byte-identical across backends (always);
* a cold-process cycle against a warm artifact store is >= 3x faster
  than the same cycle with no store -- duplicate content parses once
  per fleet ever, not once per process per run (always);
* the process backend at 8 workers is >= 2x the thread backend at 8
  workers -- only enforced when the machine exposes >= 4 usable cores,
  since a single-core box cannot demonstrate multicore speedup.

Shard/store stats are written to
``benchmarks/results/executor_stats.json`` for the CI artifact.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.crawler import Crawler
from repro.crawler.entities import HostEntity
from repro.crawler.serialize import dump_frame, load_frame
from repro.engine import render_text
from repro.engine.artifact_store import ArtifactStore
from repro.fs.vfs import VirtualFilesystem
from repro.rules import load_builtin_validator
from repro.workloads import kubernetes_manifest

from conftest import emit

#: Fleet shape: nodes x manifests, every manifest unique so nothing
#: dedupes inside a cycle -- each file must be parsed (or loaded from
#: the artifact store) exactly once.
_NODES = 8
_PODS_PER_NODE = 2

#: Annotation lines appended to each manifest.  ~300 lines puts a
#: single YAML parse around 50-60ms, so the 16-file fleet spends >1s
#: of pure lens CPU per cold cycle -- enough to dwarf pool spawn and
#: shard shipping on any machine.
_ANNOTATION_LINES = 300

_WORKER_COUNTS = (1, 4, 8)

_STATS_PATH = (
    pathlib.Path(__file__).parent / "results" / "executor_stats.json"
)

#: Interleaved rounds per batch and escalation cap, as in the other
#: gated benchmarks: pooled minima converge under machine noise, while
#: a genuine regression stays off-gate no matter how many samples
#: accumulate.
_BATCH_ROUNDS = 3
_MAX_BATCHES = 3


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _manifest(node: int, pod: int) -> str:
    """A hardened pod manifest bulked with unique annotations."""
    annotations = "".join(
        f"    bench.repro.io/key-{node:02d}-{pod:02d}-{line:04d}: "
        f"value-{line}\n"
        for line in range(_ANNOTATION_LINES)
    )
    base = kubernetes_manifest(hardened=True)
    head, spec = base.split("spec:\n", 1)
    return f"{head}  annotations:\n{annotations}spec:\n{spec}"


def _blobs() -> list[str]:
    entities = []
    for node in range(_NODES):
        fs = VirtualFilesystem()
        fs.mkdir("/etc/kubernetes/manifests", mode=0o755)
        for pod in range(_PODS_PER_NODE):
            fs.write_file(
                f"/etc/kubernetes/manifests/pod-{pod:02d}.yaml",
                _manifest(node, pod),
                mode=0o644,
            )
        entities.append(HostEntity(f"bench-k8s-{node:02d}", fs))
    return [dump_frame(f) for f in Crawler().crawl_many(entities)]


def _timed_cycle(blobs, *, executor="thread", workers=1, store_path=None):
    """One scan cycle: rebuild frames (untimed), validate (timed).

    Every cycle gets a fresh validator, parse cache, and -- for the
    process backend -- a fresh pool, so worker caches are genuinely
    cold and only the on-disk artifact store persists between cycles.
    """
    frames = [load_frame(blob) for blob in blobs]
    validator = load_builtin_validator(
        executor=executor, artifact_store=store_path
    )
    validator.rule_count()  # preload packs outside the timed region
    started = time.perf_counter()
    report = validator.validate_frames(frames, workers=workers)
    elapsed = time.perf_counter() - started
    validator.close()
    return elapsed, report


@pytest.mark.benchmark(group="executor")
@pytest.mark.parametrize("workers", _WORKER_COUNTS)
def test_thread_backend(benchmark, workers):
    blobs = _blobs()
    benchmark.pedantic(
        lambda: _timed_cycle(blobs, executor="thread", workers=workers),
        rounds=3,
    )


@pytest.mark.benchmark(group="executor")
@pytest.mark.parametrize("workers", _WORKER_COUNTS)
def test_process_backend(benchmark, workers):
    blobs = _blobs()
    benchmark.pedantic(
        lambda: _timed_cycle(blobs, executor="process", workers=workers),
        rounds=3,
    )


def test_executor_speedup_gate(benchmark, tmp_path):
    benchmark.pedantic(lambda: None, rounds=1)  # reporter shim
    blobs = _blobs()
    cores = _usable_cores()
    store_path = tmp_path / "artifacts.sqlite"

    # Warm the artifact store once (untimed): after this, every unique
    # file in the fleet has a serialized parse artifact on disk.
    _timed_cycle(blobs, executor="process", workers=2,
                 store_path=store_path)

    times = {
        "thread": dict.fromkeys(_WORKER_COUNTS, float("inf")),
        "process": dict.fromkeys(_WORKER_COUNTS, float("inf")),
    }
    storeless = warm = float("inf")
    thread_report = process_report = warm_report = None
    speedup = warm_ratio = 0.0
    for _batch in range(_MAX_BATCHES):
        for _ in range(_BATCH_ROUNDS):
            for workers in _WORKER_COUNTS:
                elapsed, report = _timed_cycle(
                    blobs, executor="thread", workers=workers)
                if elapsed < times["thread"][workers]:
                    times["thread"][workers] = elapsed
                    if workers == 8:
                        thread_report = report
                elapsed, report = _timed_cycle(
                    blobs, executor="process", workers=workers)
                if elapsed < times["process"][workers]:
                    times["process"][workers] = elapsed
                    if workers == 8:
                        process_report = report
            # The warm/cold store pair shares the worker count so the
            # only variable is whether parses hit the on-disk tier.
            elapsed, _report = _timed_cycle(
                blobs, executor="process", workers=2)
            storeless = min(storeless, elapsed)
            elapsed, report = _timed_cycle(
                blobs, executor="process", workers=2,
                store_path=store_path)
            if elapsed < warm:
                warm, warm_report = elapsed, report
        speedup = times["thread"][8] / times["process"][8]
        warm_ratio = storeless / warm
        if warm_ratio >= 3.0 and (cores < 4 or speedup >= 2.0):
            break

    fleet_files = _NODES * _PODS_PER_NODE
    lines = [
        f"Executor backends, {_NODES}-node fleet "
        f"({fleet_files} unique YAML manifests, "
        f"{_ANNOTATION_LINES + 30}-line each; pooled interleaved minima; "
        f"{cores} usable cores)",
        f"{'cycle':<40}{'seconds':>10}{'vs thread-1':>13}",
    ]
    base = times["thread"][1]
    for backend in ("thread", "process"):
        for workers in _WORKER_COUNTS:
            seconds = times[backend][workers]
            lines.append(
                f"{backend + ', ' + str(workers) + ' workers':<40}"
                f"{seconds:>10.4f}{base / seconds:>12.2f}x"
            )
    lines += [
        f"{'process-2, no artifact store':<40}{storeless:>10.4f}"
        f"{base / storeless:>12.2f}x",
        f"{'process-2, warm artifact store':<40}{warm:>10.4f}"
        f"{base / warm:>12.2f}x",
        f"warm-store speedup over storeless: {warm_ratio:.2f}x "
        "(gate: >= 3x)",
        f"process-8 speedup over thread-8: {speedup:.2f}x "
        f"(gate: >= 2x, enforced on >= 4 cores)",
    ]
    stats = warm_report.exec_stats
    if stats is not None:
        lines.append(stats.render())
    emit("executor_backends", "\n".join(lines))

    with ArtifactStore(store_path) as store:
        store_stats = store.stats().to_dict()
    _STATS_PATH.parent.mkdir(exist_ok=True)
    _STATS_PATH.write_text(
        json.dumps(
            {
                "usable_cores": cores,
                "fleet_files": fleet_files,
                "seconds": {
                    backend: {str(w): round(s, 4)
                              for w, s in per_worker.items()}
                    for backend, per_worker in times.items()
                },
                "warm_store_speedup": round(warm_ratio, 2),
                "process_vs_thread_8w": round(speedup, 2),
                "exec": stats.to_dict() if stats is not None else None,
                "artifact_store": store_stats,
            },
            indent=2,
        )
        + "\n"
    )

    # Byte identity across backends and store states -- the optimization
    # must be invisible in the report.
    baseline = render_text(thread_report, verbose=True)
    assert render_text(process_report, verbose=True) == baseline
    assert render_text(warm_report, verbose=True) == baseline

    assert warm_ratio >= 3.0, (
        f"warm-store cold-process cycle only {warm_ratio:.2f}x faster "
        f"than a storeless one (gate: >= 3x)"
    )
    if cores >= 4:
        assert speedup >= 2.0, (
            f"process backend at 8 workers only {speedup:.2f}x the "
            f"thread backend (gate: >= 2x on {cores} cores)"
        )
