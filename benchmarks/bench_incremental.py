"""Incremental revalidation benchmark (ISSUE 3 acceptance gate).

Steady-state scan cycles against a persistent
:class:`~repro.engine.incremental.VerdictStore` at 0%, 1%, and 10% dirty
frames, against full revalidation of the same fleet.  The gate asserts:

* unchanged fleet (0% dirty): incremental cycle >= 5x faster than full;
* cold first cycle (empty store, everything recorded): no regression
  beyond tolerance vs a plain full cycle -- dependency recording must be
  cheap enough to leave always-on.

Frames are rebuilt from serialized blobs each cycle, as a real pipeline
re-crawls entities each cycle; mutations land on the fresh frames so
fingerprints are honest.  A verdict-store stats JSON is written to
``benchmarks/results/incremental_store_stats.json`` for the CI artifact.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.crawler import ContainerEntity, Crawler, DockerImageEntity
from repro.crawler.serialize import dump_frame, load_frame
from repro.engine import VerdictStore, render_text
from repro.rules import load_builtin_validator
from repro.workloads import FleetSpec, build_fleet, ubuntu_host_entity

from conftest import emit

#: Mixed fleet: container-heavy breadth plus full Ubuntu hosts carrying
#: nginx+mysql, whose large config trees dominate full-validation cost --
#: the fleet shape incremental replay is built for.
_SPEC = FleetSpec(images=6, containers_per_image=4, misconfig_rate=0.3,
                  seed=42)
_HOSTS = 10

#: Cold-cycle tolerance: the first cycle records dependency tapes and
#: computes whole-frame digests, which hashes every file once more than
#: a plain full cycle does.  That overhead is repaid within the first
#: warm cycle (>= 5x faster), so the gate only guards against recording
#: becoming pathological, not against its inherent one-time cost.
_COLD_OVERHEAD_TOLERANCE = 1.75

_STORE_STATS_PATH = (
    pathlib.Path(__file__).parent / "results" / "incremental_store_stats.json"
)


def _blobs() -> list[str]:
    _daemon, images, containers = build_fleet(_SPEC)
    entities = [DockerImageEntity(i) for i in images] + [
        ContainerEntity(c) for c in containers
    ]
    entities += [
        ubuntu_host_entity(f"bench-host-{i}", hardening=0.5, seed=i,
                           with_nginx=True, with_mysql=True)
        for i in range(_HOSTS)
    ]
    return [dump_frame(f) for f in Crawler().crawl_many(entities, workers=4)]


def _frames(blobs: list[str], dirty: int = 0, tag: str = "") -> list:
    """Fresh frames for one cycle; the first ``dirty`` frames get a new
    file under a searched directory (listing + content both change)."""
    frames = [load_frame(blob) for blob in blobs]
    for i in range(dirty):
        frames[i % len(frames)].files.write_file(
            f"/etc/ssh/bench_{tag}.conf", f"# dirty {tag}\nPort 22\n"
        )
    return frames


def _timed_cycle(blobs, store, *, dirty=0, tag="", workers=1):
    """One scan cycle: rebuild frames (untimed), validate (timed)."""
    frames = _frames(blobs, dirty=dirty, tag=tag)
    validator = load_builtin_validator(verdict_store=store)
    validator.rule_count()  # preload packs outside the timed region
    started = time.perf_counter()
    report = validator.validate_frames(frames, workers=workers)
    return time.perf_counter() - started, report


def _best_of(cycles: int, run) -> tuple[float, object]:
    best, kept = float("inf"), None
    for attempt in range(cycles):
        elapsed, report = run(attempt)
        if elapsed < best:
            best, kept = elapsed, report
    return best, kept


@pytest.mark.benchmark(group="incremental")
def test_incremental_unchanged_cycle(benchmark):
    """Steady-state replay: warm store, zero dirty frames."""
    blobs = _blobs()
    store = VerdictStore()
    _timed_cycle(blobs, store)  # warm the store
    frames = _frames(blobs)
    validator = load_builtin_validator(verdict_store=store)
    validator.rule_count()

    report = benchmark(validator.validate_frames, frames, workers=1)
    assert report.incremental.rules_evaluated == 0


@pytest.mark.benchmark(group="incremental")
def test_full_cycle_reference(benchmark):
    """The same fleet through plain full validation (no store)."""
    blobs = _blobs()
    frames = _frames(blobs)
    validator = load_builtin_validator()
    validator.rule_count()

    report = benchmark(validator.validate_frames, frames, workers=1)
    assert len(report) > 0


#: Interleaved full/cold/clean rounds per batch.  The three cycle kinds
#: alternate so all sample the same machine-noise profile; each side's
#: pooled minimum then estimates its true cost (noise is additive).
_BATCH_ROUNDS = 3

#: Escalation: if a gated ratio is still off after a batch, measure
#: another batch -- the pooled minima keep converging -- up to this many
#: batches before failing.  A genuine regression stays off-gate no
#: matter how many samples accumulate.
_MAX_BATCHES = 3


def test_incremental_speedup_gate(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)  # reporter shim
    blobs = _blobs()
    fleet = len(blobs)

    store = VerdictStore()
    _timed_cycle(blobs, store)  # warm the steady-state store

    full_time = cold_time = clean_time = float("inf")
    full_report = cold_report = clean_report = None
    speedup = cold_ratio = 0.0
    for _batch in range(_MAX_BATCHES):
        for _ in range(_BATCH_ROUNDS):
            elapsed, report = _timed_cycle(blobs, None)
            if elapsed < full_time:
                full_time, full_report = elapsed, report
            # A fresh empty store each attempt -- "cold" means recording
            # the dependency tapes from scratch.
            elapsed, report = _timed_cycle(blobs, VerdictStore())
            if elapsed < cold_time:
                cold_time, cold_report = elapsed, report
            # The steady-state cycle is ~10ms, so a single scheduler
            # burst can double one sample; extra rounds shed the noise.
            for _ in range(3):
                elapsed, report = _timed_cycle(blobs, store)
                if elapsed < clean_time:
                    clean_time, clean_report = elapsed, report
        speedup = full_time / clean_time
        cold_ratio = cold_time / full_time
        if speedup >= 5.0 and cold_ratio <= _COLD_OVERHEAD_TOLERANCE:
            break

    one_pct, _ = _best_of(
        3,
        lambda n: _timed_cycle(blobs, store, dirty=max(1, fleet // 100),
                               tag=f"p1-{n}"),
    )
    ten_pct, _ = _best_of(
        3,
        lambda n: _timed_cycle(blobs, store, dirty=max(1, fleet // 10),
                               tag=f"p10-{n}"),
    )

    stats = clean_report.incremental

    lines = [
        f"Incremental revalidation, {fleet}-entity fleet "
        "(steady-state cycle, pooled interleaved minima, workers=1)",
        f"{'cycle':<36}{'seconds':>10}{'vs full':>10}",
        f"{'full revalidation':<36}{full_time:>10.4f}{'1.0x':>10}",
        f"{'incremental, cold store':<36}{cold_time:>10.4f}"
        f"{cold_ratio:>9.2f}x",
        f"{'incremental, 0% dirty':<36}{clean_time:>10.4f}"
        f"{full_time / clean_time:>9.2f}x",
        f"{'incremental, 1% dirty':<36}{one_pct:>10.4f}"
        f"{full_time / one_pct:>9.2f}x",
        f"{'incremental, 10% dirty':<36}{ten_pct:>10.4f}"
        f"{full_time / ten_pct:>9.2f}x",
        stats.render(),
    ]
    emit("incremental_cycles", "\n".join(lines))

    _STORE_STATS_PATH.parent.mkdir(exist_ok=True)
    _STORE_STATS_PATH.write_text(
        json.dumps(
            {
                "fleet_entities": fleet,
                "speedup_unchanged": round(speedup, 2),
                "cold_cycle_ratio": round(cold_ratio, 2),
                "run": {
                    "rules_replayed": stats.rules_replayed,
                    "rules_evaluated": stats.rules_evaluated,
                    "composites_replayed": stats.composites_replayed,
                    "composites_evaluated": stats.composites_evaluated,
                    "frames_clean": stats.frames_clean,
                    "frames_dirty": stats.frames_dirty,
                },
                "store": stats.store.to_dict() if stats.store else None,
            },
            indent=2,
        )
        + "\n"
    )

    # Replays must be invisible in the report.
    assert render_text(clean_report, verbose=True) == render_text(
        full_report, verbose=True
    )
    assert render_text(cold_report, verbose=True) == render_text(
        full_report, verbose=True
    )
    assert speedup >= 5.0, (
        f"unchanged-fleet incremental cycle only {speedup:.1f}x faster "
        f"than full revalidation (gate: >= 5x)"
    )
    assert cold_ratio <= _COLD_OVERHEAD_TOLERANCE, (
        f"cold incremental cycle {cold_ratio:.2f}x a full cycle "
        f"(gate: <= {_COLD_OVERHEAD_TOLERANCE}x)"
    )
