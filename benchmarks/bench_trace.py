"""Experiment E10 -- cost of the cross-process trace fabric.

With ``--executor process``, enabling telemetry buys worker-side span
capture, metric-delta capture, per-rule profiles, the pickled captures
riding home on every ShardResult, and the parent-side merge (clock
re-basing, span re-keying, counter folds).  The fabric's promise is
that all of that stays within the same <= 5% per-cycle budget the
in-process telemetry path honors -- ``test_process_telemetry_overhead_gate``
is the regression gate for it.

Unlike :mod:`bench_telemetry_overhead` (CPU time), this gate measures
**wall clock**: with a process pool the instrumented work happens in
worker processes, where the parent's ``process_time`` cannot see it,
and the operator-visible cost of shipping captures is end-to-end cycle
latency.  Both validators keep their pools resident across rounds
(telemetry participates in the pool key, so on/off are two distinct
persistent pools) -- pool spawn never lands inside a measurement.
"""

from __future__ import annotations

import gc
import statistics
import time

import pytest

from repro.crawler import ContainerEntity, Crawler, DockerImageEntity
from repro.engine import render_text
from repro.rules import load_builtin_validator
from repro.telemetry import Telemetry
from repro.workloads import FleetSpec, build_fleet

from conftest import emit

#: Interleaved timing rounds per batch.
ROUNDS = 14
#: Extra measurement batches granted before an over-budget verdict sticks.
BATCHES = 3
#: Enabled-telemetry cost ceiling per process-backend scan cycle.
BUDGET = 0.05
WORKERS = 4
SHARD_SIZE = 2


def _frames():
    _daemon, images, containers = build_fleet(
        FleetSpec(images=4, containers_per_image=3, misconfig_rate=0.5)
    )
    entities = [ContainerEntity(c) for c in containers]
    entities += [DockerImageEntity(i) for i in images]
    return Crawler().crawl_many(entities)


def _process_validator(telemetry=None):
    validator = load_builtin_validator(telemetry=telemetry)
    validator.executor = "process"
    validator.shard_size = SHARD_SIZE
    return validator


@pytest.mark.benchmark(group="trace-fabric")
def test_process_cycle_plain(benchmark):
    frames = _frames()
    validator = _process_validator()
    try:
        validator.validate_frames(frames, workers=WORKERS)  # spawn pool
        report = benchmark(
            validator.validate_frames, frames, workers=WORKERS)
        assert len(report) > 100
    finally:
        validator.close()


@pytest.mark.benchmark(group="trace-fabric")
def test_process_cycle_telemetry(benchmark):
    frames = _frames()
    telemetry = Telemetry()
    validator = _process_validator(telemetry)
    try:
        validator.validate_frames(frames, workers=WORKERS)  # spawn pool

        def cycle():
            telemetry.spans.clear()
            telemetry.metrics.collect()
            return validator.validate_frames(frames, workers=WORKERS)

        report = benchmark(cycle)
        assert len(report) > 100
    finally:
        validator.close()


def _timed_wall(fn):
    """One settled wall-clock measurement (GC parked outside it)."""
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        result = fn()
        return time.perf_counter() - started, result
    finally:
        gc.enable()


def test_process_telemetry_overhead_gate(benchmark):
    """Fabric on: < 5% slower per process cycle, byte-identical report."""
    benchmark.pedantic(lambda: None, rounds=1)  # reporter shim
    frames = _frames()
    plain = _process_validator()
    telemetry = Telemetry()
    instrumented = _process_validator(telemetry)
    try:
        # Spawn both pools and warm every worker's parse cache outside
        # the timed region.
        for _ in range(2):
            plain.validate_frames(frames, workers=WORKERS)
            instrumented.validate_frames(frames, workers=WORKERS)

        def run_off():
            return plain.validate_frames(frames, workers=WORKERS)

        def run_on():
            # A steady-state cycle of a resident instrumented scanner:
            # drop the previous cycle's exported spans, scrape the
            # metrics (paying the deferred per-rule tally), validate --
            # which now also covers worker capture, the pickled captures
            # on each ShardResult, and the parent-side merge.
            telemetry.spans.clear()
            telemetry.metrics.collect()
            return instrumented.validate_frames(frames, workers=WORKERS)

        # Same two-estimator scheme as bench_telemetry_overhead: the
        # best-of minima survive bursty noise, the median paired ratio
        # survives sustained uniform load; the gate takes the smaller
        # (a real regression inflates both), escalating through extra
        # batches before an over-budget verdict sticks.
        off_times: list[float] = []
        on_times: list[float] = []
        ratios: list[float] = []
        report_off = report_on = None
        overhead = float("inf")
        for batch in range(BATCHES):
            if batch:
                time.sleep(2.0)
            for round_index in range(ROUNDS):
                pair = [("off", run_off), ("on", run_on)]
                if round_index % 2:
                    pair.reverse()
                elapsed = {}
                for side, fn in pair:
                    elapsed[side], report = _timed_wall(fn)
                    if side == "off":
                        report_off = report
                    else:
                        report_on = report
                off_times.append(elapsed["off"])
                on_times.append(elapsed["on"])
                ratios.append(elapsed["on"] / elapsed["off"])
                telemetry.profiler.entries()
            best_of = (min(on_times) - min(off_times)) / min(off_times)
            paired = statistics.median(ratios) - 1.0
            overhead = min(best_of, paired)
            if overhead < BUDGET:
                break
        best_off, best_on = min(off_times), min(on_times)
        worker_spans = sum(
            1 for span in telemetry.spans.finished()
            if span.pid is not None
        )
        emit(
            "trace_fabric_overhead",
            "\n".join([
                "Trace-fabric overhead (process backend, "
                f"{WORKERS} workers, {len(off_times)} interleaved rounds)",
                f"{'telemetry off':<16}{best_off * 1e3:>10.2f} ms"
                f"  (median {statistics.median(off_times) * 1e3:.2f})",
                f"{'telemetry on':<16}{best_on * 1e3:>10.2f} ms"
                f"  (median {statistics.median(on_times) * 1e3:.2f})",
                f"{'best-of':<16}{best_of:>10.1%}",
                f"{'median paired':<16}{paired:>10.1%}",
                f"{'overhead':<16}{overhead:>10.1%}",
                f"worker spans merged per cycle: {worker_spans}",
            ]),
        )
        assert worker_spans > 0, "no worker spans reached the parent"
        assert render_text(report_on) == render_text(report_off)
        assert overhead < BUDGET, (
            f"trace-fabric overhead {overhead:.1%} exceeds the "
            f"{BUDGET:.0%} budget"
        )
    finally:
        plain.close()
        instrumented.close()
