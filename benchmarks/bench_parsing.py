"""Ablation A2 -- lens parsing cost per format (paper Section 3.3/6).

The paper observes a tradeoff: "It might be trivial to parse a more
descriptive but seemingly tedious configuration style, as in sysctl.conf,
as compared to a more modular style as in apache2.conf".  The sweep
parses same-order-of-magnitude documents under each lens and reports
bytes/second and tree sizes.
"""

from __future__ import annotations

import time

import pytest

from repro.augtree.lenses import (
    ApacheLens,
    IniLens,
    NginxLens,
    SshdLens,
    SysctlLens,
)
from repro.workloads.rulegen import generate_nginx_config, generate_sysctl_config

from conftest import emit


def _apache_config(sections: int) -> str:
    blocks = []
    for index in range(sections):
        blocks.append(
            f"<Directory /srv/site{index}/>\n"
            f"    Options -Indexes\n"
            f"    AllowOverride None\n"
            f"</Directory>"
        )
    return "ServerTokens Prod\nTraceEnable Off\n" + "\n".join(blocks) + "\n"


def _sshd_config(lines: int) -> str:
    return "\n".join(f"AcceptEnv LC_{index:04d}" for index in range(lines)) + "\n"


def _ini_config(sections: int) -> str:
    parts = []
    for index in range(sections):
        parts.append(f"[section{index}]\nkey{index} = value{index}\nflag{index}\n")
    return "".join(parts)


_WORKLOADS = {
    "sysctl": (SysctlLens(), generate_sysctl_config(800)),
    "sshd": (SshdLens(), _sshd_config(800)),
    "ini": (IniLens(), _ini_config(300)),
    "nginx": (NginxLens(), generate_nginx_config(120)),
    "apache": (ApacheLens(), _apache_config(200)),
}


@pytest.mark.parametrize("fmt", sorted(_WORKLOADS))
@pytest.mark.benchmark(group="parsing")
def test_lens_parse(benchmark, fmt):
    lens, text = _WORKLOADS[fmt]
    tree = benchmark(lens.parse, text)
    assert tree.size() > 100


def test_parsing_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    lines = [
        "Lens parsing ablation (descriptive vs modular styles)",
        f"{'lens':<8}{'bytes':>8}{'nodes':>7}{'MB/s':>8}{'us/node':>9}",
    ]
    for fmt in ("sysctl", "sshd", "ini", "nginx", "apache"):
        lens, text = _WORKLOADS[fmt]
        tree = lens.parse(text)
        started = time.perf_counter()
        rounds = 20
        for _ in range(rounds):
            lens.parse(text)
        elapsed = (time.perf_counter() - started) / rounds
        lines.append(
            f"{fmt:<8}{len(text):>8}{tree.size():>7}"
            f"{len(text) / elapsed / 1e6:>8.1f}"
            f"{elapsed * 1e6 / tree.size():>9.2f}"
        )
    emit("parsing", "\n".join(lines))
