"""History-store write-overhead benchmark (ISSUE 4 acceptance gate).

The monitor's promise is that durable history is observation, not tax:
appending a cycle (rollup row + one verdict row per (target, entity,
rule) + per-frame rollups, one SQLite transaction in WAL mode) must cost
**< 5% of the scan cycle it records**.  The gate measures a realistic
fleet cycle through :class:`~repro.engine.batch.BatchScanner` and the
:meth:`~repro.history.store.HistoryStore.record_cycle` call that
persists it, and fails if the ratio crosses the budget.

A stats JSON is written to ``benchmarks/results/history_overhead.json``
for the CI artifact.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time

import pytest

from repro.crawler import ContainerEntity, DockerImageEntity
from repro.engine.batch import BatchScanner
from repro.history import HistoryStore
from repro.rules import load_builtin_validator
from repro.workloads import FleetSpec, build_fleet, ubuntu_host_entity

from conftest import emit

#: The <5% budget from ISSUE 4.
_OVERHEAD_BUDGET = 0.05

#: Same canonical fleet shape as ``bench_incremental.py`` (40 entities,
#: ~2100 verdict rows per cycle).
_SPEC = FleetSpec(images=6, containers_per_image=4, misconfig_rate=0.3,
                  seed=42)
_HOSTS = 10

_STATS_PATH = (
    pathlib.Path(__file__).parent / "results" / "history_overhead.json"
)


def _entities() -> list:
    _daemon, images, containers = build_fleet(_SPEC)
    entities = [DockerImageEntity(i) for i in images] + [
        ContainerEntity(c) for c in containers
    ]
    entities += [
        ubuntu_host_entity(f"hist-host-{i}", hardening=0.6, seed=i,
                           with_nginx=True, with_mysql=True)
        for i in range(_HOSTS)
    ]
    return entities


def _scan(entities, scanner):
    """One monitor cycle exactly as FleetMonitor runs it: re-crawl the
    fleet and validate it (warm parse cache -- the steady state)."""
    started = time.perf_counter()
    summary = scanner.scan_entities(entities, workers=1)
    return time.perf_counter() - started, summary


def _best_of(cycles: int, run):
    """Best-of-N with GC parked outside the timed window -- at the
    millisecond scale of one append, a collection pause is 2x noise."""
    best, kept = float("inf"), None
    for _ in range(cycles):
        gc.collect()
        gc.disable()
        try:
            elapsed, result = run()
        finally:
            gc.enable()
        if elapsed < best:
            best, kept = elapsed, result
    return best, kept


@pytest.mark.benchmark(group="history")
def test_record_cycle_throughput(benchmark, tmp_path):
    """Raw append cost of one cycle's rows against an on-disk store."""
    entities = _entities()
    scanner = BatchScanner(load_builtin_validator())
    _elapsed, summary = _scan(entities, scanner)
    with HistoryStore(str(tmp_path / "bench.sqlite")) as store:
        benchmark(store.record_cycle, summary)
        assert store.cycle_count() > 0


#: Escalation: if the measured ratio is still over budget after a
#: batch, measure another batch -- the pooled minima of both sides keep
#: converging toward the true costs -- before failing.  A genuine
#: regression stays over budget no matter how many samples accumulate.
_MAX_BATCHES = 3


def test_history_write_overhead_gate(benchmark, tmp_path):
    benchmark.pedantic(lambda: None, rounds=1)  # reporter shim
    entities = _entities()
    scanner = BatchScanner(load_builtin_validator())
    _scan(entities, scanner)  # warm the parse cache (steady state)

    cycle_time, summary = _best_of(3, lambda: _scan(entities, scanner))
    verdict_rows = len(summary.report)

    with HistoryStore(str(tmp_path / "bench.sqlite")) as store:
        # First append pays the one-time series-dimension population;
        # steady state (what the monitor runs) starts at cycle 2.
        store.record_cycle(summary)
        write_time = float("inf")
        for _batch in range(_MAX_BATCHES):
            best, _ = _best_of(
                7, lambda: (_timed_record(store, summary), None)
            )
            write_time = min(write_time, best)
            if write_time / cycle_time < _OVERHEAD_BUDGET:
                break
            # Re-pool the cycle side too: a lucky-fast scan minimum
            # against an inflated write minimum fails the ratio even
            # when the true overhead is in budget.
            best, _ = _best_of(3, lambda: _scan(entities, scanner))
            cycle_time = min(cycle_time, best)
        db_bytes = store.stats().db_bytes

    ratio = write_time / cycle_time
    lines = [
        f"History store write overhead, {summary.entities_scanned}-entity"
        f" fleet ({verdict_rows} verdict rows/cycle, best-of timings)",
        f"{'scan cycle (no store)':<36}{cycle_time:>10.4f}s",
        f"{'record_cycle append':<36}{write_time:>10.4f}s",
        f"{'overhead':<36}{ratio:>10.2%}  (budget "
        f"{_OVERHEAD_BUDGET:.0%})",
    ]
    emit("history_overhead", "\n".join(lines))

    _STATS_PATH.parent.mkdir(exist_ok=True)
    _STATS_PATH.write_text(
        json.dumps(
            {
                "fleet_entities": summary.entities_scanned,
                "verdict_rows_per_cycle": verdict_rows,
                "scan_cycle_s": round(cycle_time, 5),
                "record_cycle_s": round(write_time, 5),
                "overhead_ratio": round(ratio, 5),
                "budget": _OVERHEAD_BUDGET,
                "db_bytes": db_bytes,
            },
            indent=2,
        )
        + "\n"
    )

    assert ratio < _OVERHEAD_BUDGET, (
        f"history write overhead {ratio:.2%} exceeds the "
        f"{_OVERHEAD_BUDGET:.0%} budget "
        f"({write_time:.4f}s write vs {cycle_time:.4f}s cycle)"
    )


def _timed_record(store, summary) -> float:
    started = time.perf_counter()
    store.record_cycle(summary)
    return time.perf_counter() - started
