"""Experiment E10 -- cost of the chaos fabric when nothing is armed.

Every injection site in the hot paths (filesystem reads, lens parses,
rule evaluation, store operations) is gated on one attribute read
(``_CHAOS.armed``); with the armed null plan the gate opens but every
draw declines, pricing the site dispatch itself.  This experiment
measures both regimes against a fully disarmed run and doubles as the
regression gate: ``test_chaos_overhead_gate`` fails if the armed null
plan costs more than 2% per scan cycle, or if it changes a single byte
of the report.
"""

from __future__ import annotations

import gc
import statistics
import time

import pytest

from repro.chaos.fabric import arm_plan, disarm
from repro.chaos.plans import resolve_plan
from repro.crawler import ContainerEntity, Crawler, DockerImageEntity
from repro.engine import render_text
from repro.rules import load_builtin_validator
from repro.workloads import FleetSpec, build_fleet

from conftest import emit

#: Interleaved timing rounds per batch; best-of CPU time filters noise.
ROUNDS = 30
#: Extra measurement batches granted before an over-budget verdict sticks.
BATCHES = 3
#: Armed-null-plan cost ceiling per scan cycle (the acceptance gate:
#: disarmed sites must price at noise, armed-but-never-firing at <= 2%).
BUDGET = 0.02


def _frames():
    _daemon, images, containers = build_fleet(
        FleetSpec(images=4, containers_per_image=3, misconfig_rate=0.5)
    )
    entities = [ContainerEntity(c) for c in containers]
    entities += [DockerImageEntity(i) for i in images]
    return Crawler().crawl_many(entities)


@pytest.mark.benchmark(group="chaos")
def test_validate_frames_disarmed(benchmark):
    disarm()
    frames = _frames()
    validator = load_builtin_validator()
    report = benchmark(validator.validate_frames, frames)
    assert len(report) > 100


@pytest.mark.benchmark(group="chaos")
def test_validate_frames_null_plan(benchmark):
    frames = _frames()
    validator = load_builtin_validator()
    arm_plan(resolve_plan("null"))
    try:
        report = benchmark(validator.validate_frames, frames)
    finally:
        disarm()
    assert len(report) > 100


def _timed(fn):
    """One settled measurement of CPU time (same policy as the
    telemetry gate: GC between measurements, never inside them)."""
    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        result = fn()
        return time.process_time() - started, result
    finally:
        gc.enable()


def test_chaos_overhead_gate(benchmark):
    """Armed null plan: < 2% slower per cycle, byte-identical report."""
    benchmark.pedantic(lambda: None, rounds=1)  # reporter shim
    frames = _frames()
    validator = load_builtin_validator()
    null_plan = resolve_plan("null")
    disarm()
    # Warm the validator (pack loading, parse cache) outside the timed
    # region; one armed warm-up charges the plan-compile cost up front.
    validator.validate_frames(frames)
    arm_plan(null_plan)
    validator.validate_frames(frames)
    disarm()

    def run_off():
        disarm()
        return validator.validate_frames(frames)

    def run_on():
        arm_plan(null_plan)
        try:
            return validator.validate_frames(frames)
        finally:
            disarm()

    # Interleave with alternating A/B order, gate on the smaller of
    # best-of and median-paired overhead (see bench_telemetry_overhead
    # for why each estimator guards against the other's noise regime).
    off_times: list[float] = []
    on_times: list[float] = []
    ratios: list[float] = []
    report_off = report_on = None
    overhead = float("inf")
    for batch in range(BATCHES):
        if batch:
            time.sleep(2.0)
        for round_index in range(ROUNDS):
            pair = [("off", run_off), ("on", run_on)]
            if round_index % 2:
                pair.reverse()
            elapsed = {}
            for side, fn in pair:
                elapsed[side], report = _timed(fn)
                if side == "off":
                    report_off = report
                else:
                    report_on = report
            off_times.append(elapsed["off"])
            on_times.append(elapsed["on"])
            ratios.append(elapsed["on"] / elapsed["off"])
        best_of = (min(on_times) - min(off_times)) / min(off_times)
        paired = statistics.median(ratios) - 1.0
        overhead = min(best_of, paired)
        if overhead < BUDGET:
            break
    best_off, best_on = min(off_times), min(on_times)
    emit(
        "chaos_overhead",
        "\n".join([
            "Chaos-fabric overhead (fleet validation, "
            f"{len(off_times)} interleaved rounds)",
            f"{'disarmed':<16}{best_off * 1e3:>10.2f} ms"
            f"  (median {statistics.median(off_times) * 1e3:.2f})",
            f"{'null plan':<16}{best_on * 1e3:>10.2f} ms"
            f"  (median {statistics.median(on_times) * 1e3:.2f})",
            f"{'best-of':<16}{best_of:>10.1%}",
            f"{'median paired':<16}{paired:>10.1%}",
            f"{'overhead':<16}{overhead:>10.1%}",
        ]),
    )
    assert render_text(report_on) == render_text(report_off)
    assert overhead < BUDGET, (
        f"armed-null-plan overhead {overhead:.1%} exceeds the "
        f"{BUDGET:.0%} budget"
    )
