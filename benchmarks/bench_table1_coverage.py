"""Experiment E1 -- paper Table 1: targets supported + rule counts.

Paper: 11 target types, 135 rules; CIS alignment for system services and
Docker, OWASP/HIPAA/PCI for apache/nginx/hadoop, OSSG for OpenStack;
41% CIS Docker coverage and all Ubuntu audit rules.

The benchmark component times rule-pack loading (spec interpretation for
all 11 targets); the report regenerates the table.
"""

from __future__ import annotations

import pytest

from repro.rules import (
    TABLE1_TARGETS,
    inventory,
    load_builtin_validator,
)

from conftest import emit

_PAPER_TOTAL = 135
_CIS_DOCKER_CHECKS = 84   # CIS Docker Benchmark 1.x check count


def _load_all_packs():
    validator = load_builtin_validator()
    return sum(
        len(validator.ruleset_for(manifest).rules)
        for manifest in validator.manifests()
    )


@pytest.mark.benchmark(group="table1")
def test_load_all_rule_packs(benchmark):
    total = benchmark(_load_all_packs)
    assert total >= _PAPER_TOTAL


def test_table1_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    counts = inventory()
    merged = dict(counts)
    merged["docker"] = merged.get("docker", 0) + merged.pop("docker_containers", 0)

    lines = ["Table 1 -- targets supported by ConfigValidator",
             f"{'Category':<17}{'Targets':<47}{'Rules':>6}"]
    total = 0
    for category, targets in TABLE1_TARGETS.items():
        row_total = sum(merged[t] for t in targets)
        total += row_total
        lines.append(
            f"{category:<17}{', '.join(targets):<47}{row_total:>6}"
        )
    lines.append(f"{'':<17}{'TOTAL (paper: 135)':<47}{total:>6}")

    validator = load_builtin_validator()
    cis_docker = set()
    for entity in ("docker", "docker_containers"):
        for rule in validator.ruleset_for(validator.manifest(entity)):
            cis_docker.update(
                tag for tag in rule.tags if tag.startswith("#cisdocker")
            )
    audit_rules = len(validator.ruleset_for(validator.manifest("audit")).rules)
    lines.append(
        f"CIS Docker coverage: {len(cis_docker)}/{_CIS_DOCKER_CHECKS} "
        f"checks = {len(cis_docker) / _CIS_DOCKER_CHECKS:.0%} (paper: 41%)"
    )
    lines.append(
        f"Ubuntu audit rules: {audit_rules} (paper: all of the checklist's"
        f" audit rules)"
    )
    emit("table1", "\n".join(lines))

    assert len([t for group in TABLE1_TARGETS.values() for t in group]) == 11
    assert total >= _PAPER_TOTAL
    assert len(cis_docker) / _CIS_DOCKER_CHECKS >= 0.30
