"""Ablation A3 -- composite rules across entities (paper Listing 1).

Measures what a cross-entity composite costs on top of per-entity rules:
expression parsing (cached), context construction, and cross-frame value
lookup for the paper's 3-entity expression.
"""

from __future__ import annotations

import pytest

from repro.fs import VirtualFilesystem
from repro.crawler import Crawler, HostEntity
from repro.cvl import Manifest
from repro.cvl.composite_expr import DictContext, evaluate_composite, parse_composite
from repro.engine import ConfigValidator

from conftest import emit

PAPER_EXPR = (
    'mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem" '
    "&& sysctl.net.ipv4.ip_forward && nginx.listen"
)

RULES = {
    "mysql.yaml": (
        "config_name: ssl-ca\nconfig_path: ['mysqld']\n"
        "file_context: ['my.cnf']\nnon_preferred_value: ['']\n"
        "---\n"
        "composite_rule_name: paper_listing1\n"
        f"composite_rule: {PAPER_EXPR}\n"
    ),
    "sysctl.yaml": (
        "config_name: net.ipv4.ip_forward\nfile_context: ['sysctl.conf']\n"
        "preferred_value: ['0']\npreferred_value_match: exact,all\n"
    ),
    "nginx.yaml": (
        "config_name: listen\nconfig_path: ['http/server', 'server']\n"
        "file_context: ['nginx.conf']\n"
    ),
}

MANIFEST = """
mysql: {config_search_paths: [/etc/mysql], cvl_file: mysql.yaml}
sysctl: {config_search_paths: [/etc/sysctl.conf], cvl_file: sysctl.yaml}
nginx: {config_search_paths: [/etc/nginx], cvl_file: nginx.yaml}
"""


def _three_entities():
    mysql_fs = VirtualFilesystem()
    mysql_fs.write_file(
        "/etc/mysql/my.cnf", "[mysqld]\nssl-ca = /etc/mysql/cacert.pem\n"
    )
    sysctl_fs = VirtualFilesystem()
    sysctl_fs.write_file("/etc/sysctl.conf", "net.ipv4.ip_forward = 0\n")
    nginx_fs = VirtualFilesystem()
    nginx_fs.write_file(
        "/etc/nginx/nginx.conf", "http { server { listen 443 ssl; } }"
    )
    return [
        HostEntity("db", mysql_fs),
        HostEntity("sys", sysctl_fs),
        HostEntity("web", nginx_fs),
    ]


def _validator() -> ConfigValidator:
    validator = ConfigValidator(resolver=RULES.__getitem__)
    validator.add_manifest_text(MANIFEST)
    return validator


@pytest.mark.benchmark(group="composite")
def test_expression_parse(benchmark):
    parse_composite.cache_clear()

    def parse():
        parse_composite.cache_clear()
        return parse_composite(PAPER_EXPR)

    assert benchmark(parse) is not None


@pytest.mark.benchmark(group="composite")
def test_expression_evaluate_only(benchmark):
    context = DictContext(
        verdicts={("sysctl", "net.ipv4.ip_forward"): True},
        values={
            ("mysql", "mysqld", "ssl-ca"): "/etc/mysql/cacert.pem",
            ("nginx", "", "listen"): "443 ssl",
        },
    )
    result = benchmark(evaluate_composite, PAPER_EXPR, context)
    assert result.passed


@pytest.mark.benchmark(group="composite")
def test_group_run_with_composite(benchmark):
    validator = _validator()
    frames = Crawler().crawl_many(_three_entities(), features=("files",))
    report = benchmark(validator.validate_frames, frames)
    assert report.compliant


@pytest.mark.benchmark(group="composite")
def test_group_run_without_composite(benchmark):
    validator = _validator()
    frames = Crawler().crawl_many(_three_entities(), features=("files",))
    report = benchmark(
        lambda: validator.validate_frames(frames, include_composites=False)
    )
    assert report.compliant


def test_composite_overhead_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    import time

    validator = _validator()
    frames = Crawler().crawl_many(_three_entities(), features=("files",))

    def timed(include):
        started = time.perf_counter()
        for _ in range(20):
            validator.validate_frames(frames, include_composites=include)
        return (time.perf_counter() - started) / 20

    with_composite = timed(True)
    without = timed(False)
    lines = [
        "Composite-rule ablation (paper Listing 1, 3 entities)",
        f"group run without composite: {without * 1e3:8.2f} ms",
        f"group run with composite:    {with_composite * 1e3:8.2f} ms",
        f"composite overhead:          {(with_composite - without) * 1e3:8.2f} ms "
        f"({(with_composite / without - 1):.0%})",
    ]
    emit("composite", "\n".join(lines))
    assert with_composite < without * 3
