"""Experiment E5 -- paper Figure 1: per-stage cost of the pipeline.

Figure 1 is the architecture (Config Extractor -> Data Normalizer ->
Rule Engine -> Output Processing); this ablation measures where the time
goes for one full-stack host validation, confirming the design point that
normalization (lens parsing) is the heavy stage and is therefore cached
per run.
"""

from __future__ import annotations

import time

import pytest

from repro.crawler import Crawler
from repro.engine import render_json, render_text
from repro.engine.normalizer import Normalizer
from repro.rules import load_builtin_validator
from repro.workloads import ubuntu_host_entity

from conftest import emit


def _entity():
    return ubuntu_host_entity(
        "stage-host", hardening=0.6, seed=5, with_nginx=True, with_mysql=True,
        with_apache=True, with_hadoop=True,
    )


@pytest.mark.benchmark(group="pipeline")
def test_stage_extract(benchmark):
    crawler = Crawler()
    entity = _entity()
    frame = benchmark(crawler.crawl, entity)
    assert frame.runtime


@pytest.mark.benchmark(group="pipeline")
def test_stage_normalize(benchmark):
    frame = Crawler().crawl(_entity())
    validator = load_builtin_validator()
    search_paths = [
        path
        for manifest in validator.manifests()
        for path in manifest.config_search_paths
    ]

    def normalize():
        normalizer = Normalizer()
        trees = 0
        for top in search_paths:
            for path in frame.files.files_under(top):
                if normalizer.try_tree(frame, path) is not None:
                    trees += 1
        return trees

    assert benchmark(normalize) > 5


@pytest.mark.benchmark(group="pipeline")
def test_stage_validate(benchmark):
    validator = load_builtin_validator()
    frame = Crawler().crawl(_entity())
    report = benchmark(validator.validate_frame, frame)
    assert len(report) > 50


@pytest.mark.benchmark(group="pipeline")
def test_stage_output(benchmark):
    validator = load_builtin_validator()
    report = validator.validate_frame(Crawler().crawl(_entity()))

    def render():
        return render_text(report, verbose=True), render_json(report)

    text, payload = benchmark(render)
    assert "ConfigValidator report" in text and payload


def test_pipeline_breakdown_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    crawler = Crawler()
    entity = _entity()

    t0 = time.perf_counter()
    frame = crawler.crawl(entity)
    t_extract = time.perf_counter() - t0

    validator = load_builtin_validator()
    validator.rule_count()  # force pack loading outside the timed region
    t0 = time.perf_counter()
    report = validator.validate_frame(frame)
    t_validate = time.perf_counter() - t0

    t0 = time.perf_counter()
    render_text(report, verbose=True)
    render_json(report)
    t_output = time.perf_counter() - t0

    total = t_extract + t_validate + t_output
    lines = [
        "Pipeline stage breakdown (Fig. 1 stages, one full-stack host)",
        f"{'stage':<28}{'time [ms]':>10}{'share':>8}",
        f"{'extract (crawler)':<28}{t_extract * 1e3:>10.2f}"
        f"{t_extract / total:>8.1%}",
        f"{'normalize + validate':<28}{t_validate * 1e3:>10.2f}"
        f"{t_validate / total:>8.1%}",
        f"{'output processing':<28}{t_output * 1e3:>10.2f}"
        f"{t_output / total:>8.1%}",
    ]
    emit("pipeline_stages", "\n".join(lines))
    assert t_validate > t_output  # rule engine dominates rendering


@pytest.mark.benchmark(group="pipeline")
def test_stage_frame_serialize(benchmark):
    """Cost of shipping a frame off-box (the decoupled pipeline)."""
    from repro.crawler.serialize import dump_frame

    frame = Crawler().crawl(_entity())
    blob = benchmark(dump_frame, frame)
    assert len(blob) > 1_000


@pytest.mark.benchmark(group="pipeline")
def test_stage_frame_deserialize(benchmark):
    from repro.crawler.serialize import dump_frame, load_frame

    blob = dump_frame(Crawler().crawl(_entity()))
    frame = benchmark(load_frame, blob)
    assert frame.exists("/etc/ssh/sshd_config")
